//! Global observability for the campaign engine.
//!
//! Shard latency, checkpoint write time and shard failures feed the
//! process-wide `cppc-obs` registry and event ring. The per-campaign
//! `MetricsTracker` snapshots (the engine's [`Progress`](crate::Progress)
//! reports) remain the deterministic, per-run source of truth; these
//! metrics accumulate across every campaign in the process.

cppc_obs::metrics! {
    group CAMPAIGN_METRICS: "campaign", "Campaign engine: shard throughput, checkpointing and failures.";
    counter SHARDS_EXECUTED: "campaign.shards_executed", "shards", "Shards executed to completion by worker threads.";
    counter SHARDS_RESUMED: "campaign.shards_resumed", "shards", "Shards skipped because a checkpoint already held them.";
    counter SHARDS_FAILED: "campaign.shards_failed", "shards", "Shards abandoned because a trial panicked.";
    counter TRIALS_EXECUTED: "campaign.trials_executed", "trials", "Individual trials run (excludes resumed trials).";
    counter CHECKPOINT_WRITES: "campaign.checkpoint_writes", "events", "Checkpoint files written.";
    counter TRACE_REPLAYS: "campaign.trace_replays", "replays", "Replays of a shared immutable benchmark trace (each one avoids regenerating the stream).";
    timer SHARD_LATENCY: "campaign.shard.ns", "ns", "Wall time of each shard (its whole trial range).";
    timer CHECKPOINT_WRITE: "campaign.checkpoint.write.ns", "ns", "Wall time of each checkpoint serialisation + write.";
}

/// Registers the campaign metric group (idempotent).
pub fn register_metrics() {
    CAMPAIGN_METRICS.register();
}
