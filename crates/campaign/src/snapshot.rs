//! Per-process pool of warm trial contexts shared across campaign shards.
//!
//! A fault-injection trial spends most of its wall time replaying the
//! same deterministic warmup prefix before injecting anything. The
//! [`WarmPool`] lets an experiment simulate that prefix **once per
//! worker thread** (per campaign identity), capture the resulting warm
//! state, and serve every subsequent trial by checking a warm context
//! out of the pool, restoring it in place and checking it back in:
//!
//! ```text
//! trial 0 (per thread):  warmup → capture     (a `snapshot.captures`)
//! trials 1..n:           checkout → restore   (a `snapshot.restores`)
//! ```
//!
//! The pool is keyed by a caller-supplied `identity` — a hash of
//! everything the warm state depends on (seed, geometry, configuration).
//! Presenting a different identity invalidates the pool: stale contexts
//! are dropped and the warmup is re-simulated, so a config change can
//! never leak a mismatched snapshot into a campaign.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

cppc_obs::metrics! {
    group SNAPSHOT_METRICS: "snapshot", "Warm-state snapshot reuse across campaign trials.";
    counter SNAPSHOT_CAPTURES: "snapshot.captures", "captures", "Warmup prefixes simulated from cold and captured into a pooled context.";
    counter SNAPSHOT_RESTORES: "snapshot.restores", "restores", "Trials served by restoring a pooled warm context instead of replaying the warmup.";
    gauge SNAPSHOT_BYTES: "snapshot.bytes", "bytes", "Approximate heap bytes held by pooled warm snapshots (current identity).";
    gauge SNAPSHOT_HIT_RATE: "snapshot.hit_rate", "percent", "Restores as a percentage of pool checkouts (restores + captures).";
}

/// Registers the snapshot metric group (idempotent).
pub fn register_metrics() {
    SNAPSHOT_METRICS.register();
}

struct PoolState<T> {
    identity: u64,
    entries: Vec<T>,
}

/// A pool of reusable warm trial contexts, keyed by a campaign identity.
///
/// Designed to live in a `static`: [`WarmPool::new`] is `const`, and all
/// coordination is a single short-lived mutex around the free list plus
/// relaxed counters. The pool never holds the lock across a capture or a
/// trial, so worker threads warm up and run concurrently; at steady
/// state it holds one context per worker thread.
pub struct WarmPool<T> {
    state: Mutex<PoolState<T>>,
    captures: AtomicU64,
    restores: AtomicU64,
    bytes: AtomicU64,
}

impl<T> Default for WarmPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WarmPool<T> {
    /// Creates an empty pool (usable in a `static`).
    #[must_use]
    pub const fn new() -> Self {
        WarmPool {
            state: Mutex::new(PoolState {
                identity: 0,
                entries: Vec::new(),
            }),
            captures: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Runs `trial` on a warm context for `identity`.
    ///
    /// Checks a pooled context out (counting a restore), or builds one
    /// with `capture` when the pool is empty or keyed to a different
    /// identity (counting a capture; `capture` returns the context and
    /// its approximate heap bytes for the `snapshot.bytes` gauge). The
    /// context is checked back in afterwards — unless the identity moved
    /// on in the meantime, in which case the stale context is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the pool mutex was poisoned by a panicking trial.
    pub fn with<R>(
        &self,
        identity: u64,
        capture: impl FnOnce() -> (T, u64),
        trial: impl FnOnce(&mut T) -> R,
    ) -> R {
        register_metrics();
        let pooled = {
            let mut st = self.state.lock().expect("warm pool poisoned");
            if st.identity != identity {
                st.identity = identity;
                st.entries.clear();
                self.bytes.store(0, Ordering::Relaxed);
            }
            st.entries.pop()
        };
        let mut ctx = match pooled {
            Some(ctx) => {
                self.restores.fetch_add(1, Ordering::Relaxed);
                SNAPSHOT_RESTORES.inc();
                ctx
            }
            None => {
                let (ctx, bytes) = capture();
                self.captures.fetch_add(1, Ordering::Relaxed);
                let total = self.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
                SNAPSHOT_CAPTURES.inc();
                SNAPSHOT_BYTES.set(i64::try_from(total).unwrap_or(i64::MAX));
                ctx
            }
        };
        let out = trial(&mut ctx);
        {
            let mut st = self.state.lock().expect("warm pool poisoned");
            if st.identity == identity {
                st.entries.push(ctx);
            }
        }
        SNAPSHOT_HIT_RATE.set(self.hit_rate_percent());
        out
    }

    /// Warmup prefixes simulated from cold over the pool's lifetime.
    #[must_use]
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Trials served from a pooled context over the pool's lifetime.
    #[must_use]
    pub fn restores(&self) -> u64 {
        self.restores.load(Ordering::Relaxed)
    }

    /// Approximate heap bytes held by contexts of the current identity.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Fraction of checkouts served from the pool, in `[0, 1]` (0 when
    /// the pool has never been used).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let restores = self.restores();
        let total = restores + self.captures();
        if total == 0 {
            0.0
        } else {
            restores as f64 / total as f64
        }
    }

    fn hit_rate_percent(&self) -> i64 {
        (self.hit_rate() * 100.0).round() as i64
    }
}

impl<T> std::fmt::Debug for WarmPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmPool")
            .field("captures", &self.captures())
            .field("restores", &self.restores())
            .field("bytes", &self.bytes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_captures_then_restores() {
        let pool: WarmPool<Vec<u64>> = WarmPool::new();
        for i in 0..5u64 {
            let seen = pool.with(
                7,
                || (vec![42], 8),
                |ctx| {
                    ctx.push(i);
                    ctx.len()
                },
            );
            assert_eq!(seen, 2 + i as usize, "context persists across trials");
        }
        assert_eq!(pool.captures(), 1);
        assert_eq!(pool.restores(), 4);
        assert_eq!(pool.bytes(), 8);
        assert!((pool.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn identity_change_invalidates_pool() {
        let pool: WarmPool<Vec<u64>> = WarmPool::new();
        pool.with(1, || (vec![1], 8), |_| ());
        pool.with(1, || (vec![1], 8), |_| ());
        assert_eq!(pool.captures(), 1);
        // New identity: the pooled context must NOT be reused.
        let fresh = pool.with(2, || (vec![9], 8), |ctx| ctx[0]);
        assert_eq!(fresh, 9);
        assert_eq!(pool.captures(), 2);
        assert_eq!(pool.bytes(), 8, "stale bytes cleared on invalidation");
    }

    #[test]
    fn concurrent_checkouts_get_distinct_contexts() {
        use std::sync::atomic::AtomicUsize;
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let pool: WarmPool<u64> = WarmPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.with(
                            3,
                            || (LIVE.fetch_add(1, Ordering::Relaxed) as u64, 1),
                            |_| std::thread::yield_now(),
                        );
                    }
                });
            }
        });
        assert_eq!(pool.captures() + pool.restores(), 200);
        assert!(pool.captures() <= 4, "at most one capture per thread");
    }
}
