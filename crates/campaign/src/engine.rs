//! The parallel deterministic campaign engine.
//!
//! A campaign is `trials` independent deterministic experiments. The
//! engine splits them into fixed-size *shards*, deals the shards to
//! worker threads through a work-stealing queue, and merges per-shard
//! results in shard order. Three properties fall out of the design:
//!
//! * **Determinism at any thread count.** Every trial's RNG stream is
//!   derived from `(campaign seed, trial index)` alone
//!   ([`trial_seed`]), the shard partition depends only on
//!   `trials`/`shard_size`, and merging happens in shard-index order —
//!   never in completion order. The merged result is therefore
//!   bit-identical whether the campaign ran on 1 thread or 64.
//! * **Interruptibility.** With a [`CheckpointPolicy`], completed
//!   shards are periodically serialized to a JSON checkpoint; a
//!   resumed campaign re-executes only the missing shards and merges
//!   to the identical final result.
//! * **Panic containment.** A panicking experiment poisons only its
//!   shard: the worker records the shard's trial range, derived seed
//!   and panic message in the report and moves on.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

use crate::checkpoint::{
    load_checkpoint, write_checkpoint, CampaignIdentity, CheckpointError, Persist,
};
use crate::metrics::{MetricsTracker, Progress};
use crate::rng::{mix64, rngs::StdRng, SeedableRng, GOLDEN_GAMMA};

/// Default trials per shard: small enough to load-balance and
/// checkpoint at fine grain, large enough to amortise scheduling.
pub const DEFAULT_SHARD_SIZE: u64 = 64;

/// Derives the seed of one trial's RNG stream from the campaign seed.
///
/// This is SplitMix64 random access at position `trial + 1`: it
/// depends only on `(campaign_seed, trial)`, never on shard layout or
/// execution order, which is what makes campaign results independent
/// of the thread count.
#[must_use]
pub const fn trial_seed(campaign_seed: u64, trial: u64) -> u64 {
    mix64(campaign_seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(trial.wrapping_add(1))))
}

/// Builds the RNG a given trial receives.
#[must_use]
pub fn trial_rng(campaign_seed: u64, trial: u64) -> StdRng {
    StdRng::seed_from_u64(trial_seed(campaign_seed, trial))
}

/// Executes a contiguous range of trials of one shard into an
/// accumulator.
///
/// The engine's determinism contract binds implementations, not just
/// the engine: for every trial in `lo..hi` the executor must derive
/// that trial's randomness from [`trial_rng`]`(seed, trial)` alone and
/// call `acc.record(trial, …)` exactly once, in ascending trial order.
/// Under that contract a range executor — e.g. one that evaluates
/// several trials through a single vectorized instruction stream — is
/// observationally identical to the per-trial loop at any thread
/// count, shard size or batch width.
///
/// Closures keep working through [`PerTrial`]; the `*_exec` entry
/// points ([`run_exec`], [`run_resumable_interruptible_exec`], …)
/// accept any executor.
pub trait TrialExec<A: Accumulator>: Sync {
    /// Runs trials `lo..hi` (derived from `seed`) into `acc`.
    fn run_range(&self, seed: u64, lo: u64, hi: u64, acc: &mut A);
}

/// The ordinary per-trial executor: each trial gets its own derived
/// RNG and one closure call.
pub struct PerTrial<F>(pub F);

impl<A, F> TrialExec<A> for PerTrial<F>
where
    A: Accumulator,
    F: Fn(&mut StdRng, u64) -> A::Item + Sync,
{
    fn run_range(&self, seed: u64, lo: u64, hi: u64, acc: &mut A) {
        for trial in lo..hi {
            let mut rng = trial_rng(seed, trial);
            acc.record(trial, (self.0)(&mut rng, trial));
        }
    }
}

/// Order-independent aggregation of per-trial results.
///
/// `merge` must be associative, and the engine guarantees it is always
/// invoked in ascending shard order, so even non-commutative
/// aggregations (floating-point sums, concatenation) are reproducible.
pub trait Accumulator: Default + Send {
    /// What one trial produces.
    type Item;

    /// Folds one trial's result into this shard's state.
    fn record(&mut self, trial: u64, item: Self::Item);

    /// Folds a later shard's state into this one.
    fn merge(&mut self, other: Self);

    /// Labelled live counters for progress display (e.g. `Corrected`).
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// Campaign shape: seed, size and execution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed every trial stream derives from.
    pub seed: u64,
    /// Number of independent trials.
    pub trials: u64,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Trials per shard. Changing this changes checkpoint granularity
    /// and floating-point merge grouping, so it is part of the
    /// campaign identity; results at a fixed `shard_size` are
    /// identical at any thread count.
    pub shard_size: u64,
    /// Stop dispatching new shards once this many have completed —
    /// used to interrupt a campaign gracefully (checkpoint tests,
    /// budgeted runs). `None` runs to completion.
    pub stop_after_shards: Option<u64>,
}

impl CampaignConfig {
    /// A sequential campaign with the default shard size.
    #[must_use]
    pub fn new(seed: u64, trials: u64) -> Self {
        CampaignConfig {
            seed,
            trials,
            threads: 1,
            shard_size: DEFAULT_SHARD_SIZE,
            stop_after_shards: None,
        }
    }

    /// Sets the worker-thread count (`0` = all available CPUs).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shard size.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    #[must_use]
    pub fn shard_size(mut self, shard_size: u64) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        self.shard_size = shard_size;
        self
    }

    /// Sets the graceful-stop shard budget.
    #[must_use]
    pub fn stop_after_shards(mut self, shards: u64) -> Self {
        self.stop_after_shards = Some(shards);
        self
    }

    /// Number of shards the trial range splits into.
    #[must_use]
    pub fn total_shards(&self) -> u64 {
        self.trials.div_ceil(self.shard_size)
    }

    /// The worker count actually used.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let wanted = if self.threads == 0 {
            hw()
        } else {
            self.threads
        };
        wanted.max(1).min(self.total_shards().max(1) as usize)
    }

    /// This campaign's checkpoint identity.
    #[must_use]
    pub fn identity(&self) -> CampaignIdentity {
        CampaignIdentity {
            seed: self.seed,
            trials: self.trials,
            shard_size: self.shard_size,
        }
    }

    fn shard_bounds(&self, shard: u64) -> (u64, u64) {
        let lo = shard * self.shard_size;
        (lo, (lo + self.shard_size).min(self.trials))
    }
}

/// Where and how often to checkpoint, and whether to resume.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path.
    pub path: PathBuf,
    /// Write the file after every `every_shards` executed shards (and
    /// always once at the end).
    pub every_shards: u64,
    /// Load previously completed shards from `path` before running.
    pub resume: bool,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` every 16 shards, resuming if the file
    /// already exists.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_shards: 16,
            resume: true,
        }
    }
}

/// A shard whose experiment panicked.
#[derive(Debug, Clone)]
pub struct FailedShard {
    /// Shard index.
    pub shard: u64,
    /// First trial of the shard (inclusive).
    pub trial_lo: u64,
    /// Last trial of the shard (exclusive).
    pub trial_hi: u64,
    /// Derived RNG seed of the shard's first trial — enough to replay
    /// the failure deterministically.
    pub first_trial_seed: u64,
    /// The panic message.
    pub message: String,
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignReport<A> {
    /// Merged result over all completed shards, in shard order.
    pub result: A,
    /// Trials contributing to `result`.
    pub trials_merged: u64,
    /// Total shards in the campaign.
    pub total_shards: u64,
    /// Shards completed (executed + resumed).
    pub completed_shards: u64,
    /// Shards restored from the checkpoint instead of executed.
    pub resumed_shards: u64,
    /// Shards that panicked (excluded from `result`).
    pub failed: Vec<FailedShard>,
    /// Wall-clock seconds for this run.
    pub elapsed_secs: f64,
}

impl<A> CampaignReport<A> {
    /// `true` when every shard completed and none failed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.completed_shards == self.total_shards
    }
}

/// Work-stealing shard scheduler: each worker owns a deque dealt
/// round-robin; a worker whose deque runs dry steals from the back of
/// another's, so stragglers (expensive shards) never serialize the
/// tail of a campaign. An optional dispatch budget bounds how many
/// shards hand out in total, which is what makes graceful interruption
/// exact rather than racy.
struct ShardQueue {
    locals: Vec<Mutex<VecDeque<u64>>>,
    budget: Option<AtomicU64>,
}

impl ShardQueue {
    fn new(shards: impl Iterator<Item = u64>, workers: usize, budget: Option<u64>) -> Self {
        let mut locals: Vec<VecDeque<u64>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, shard) in shards.enumerate() {
            locals[i % workers].push_back(shard);
        }
        ShardQueue {
            locals: locals.into_iter().map(Mutex::new).collect(),
            budget: budget.map(AtomicU64::new),
        }
    }

    fn next(&self, worker: usize) -> Option<u64> {
        if let Some(budget) = &self.budget {
            if budget
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
                .is_err()
            {
                return None;
            }
        }
        if let Some(shard) = self.locals[worker].lock().expect("queue lock").pop_front() {
            return Some(shard);
        }
        // Steal from the victim with the most work left, back first,
        // to take the shard its owner would reach last.
        let n = self.locals.len();
        let victim = (0..n)
            .filter(|&v| v != worker)
            .max_by_key(|&v| self.locals[v].lock().expect("queue lock").len())?;
        self.locals[victim].lock().expect("queue lock").pop_back()
    }
}

enum WorkerMsg<A> {
    Done { shard: u64, acc: A },
    Failed { shard: u64, message: String },
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// Runs a campaign without checkpointing.
pub fn run<A, F>(cfg: &CampaignConfig, experiment: F) -> CampaignReport<A>
where
    A: Accumulator,
    F: Fn(&mut StdRng, u64) -> A::Item + Sync,
{
    run_with_progress(cfg, experiment, |_| {})
}

/// [`run`] with an explicit [`TrialExec`] range executor.
pub fn run_exec<A, E>(cfg: &CampaignConfig, exec: E) -> CampaignReport<A>
where
    A: Accumulator,
    E: TrialExec<A>,
{
    run_impl(cfg, &exec, Vec::new(), None, None, &mut |_| {})
}

/// Runs a campaign, reporting [`Progress`] after every shard.
pub fn run_with_progress<A, F, P>(
    cfg: &CampaignConfig,
    experiment: F,
    mut on_progress: P,
) -> CampaignReport<A>
where
    A: Accumulator,
    F: Fn(&mut StdRng, u64) -> A::Item + Sync,
    P: FnMut(&Progress),
{
    run_impl(
        cfg,
        &PerTrial(experiment),
        Vec::new(),
        None,
        None,
        &mut on_progress,
    )
}

/// [`run_with_progress`] with an explicit [`TrialExec`] range executor.
pub fn run_with_progress_exec<A, E, P>(
    cfg: &CampaignConfig,
    exec: E,
    mut on_progress: P,
) -> CampaignReport<A>
where
    A: Accumulator,
    E: TrialExec<A>,
    P: FnMut(&Progress),
{
    run_impl(cfg, &exec, Vec::new(), None, None, &mut on_progress)
}

/// Runs a campaign with checkpoint/resume.
///
/// With `policy.resume`, previously completed shards are loaded from
/// `policy.path` and only the remainder executes; the merged result is
/// identical to an uninterrupted run.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the checkpoint file exists but is
/// malformed or belongs to a different campaign.
pub fn run_resumable<A, F, P>(
    cfg: &CampaignConfig,
    policy: &CheckpointPolicy,
    experiment: F,
    on_progress: P,
) -> Result<CampaignReport<A>, CheckpointError>
where
    A: Accumulator + Persist,
    F: Fn(&mut StdRng, u64) -> A::Item + Sync,
    P: FnMut(&Progress),
{
    run_resumable_interruptible(cfg, policy, None, experiment, on_progress)
}

/// [`run_resumable`] with an explicit [`TrialExec`] range executor.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the checkpoint file exists but is
/// malformed or belongs to a different campaign.
pub fn run_resumable_exec<A, E, P>(
    cfg: &CampaignConfig,
    policy: &CheckpointPolicy,
    exec: E,
    on_progress: P,
) -> Result<CampaignReport<A>, CheckpointError>
where
    A: Accumulator + Persist,
    E: TrialExec<A>,
    P: FnMut(&Progress),
{
    run_resumable_interruptible_exec(cfg, policy, None, exec, on_progress)
}

/// [`run_resumable`] with a cooperative interrupt flag.
///
/// When `interrupt` is set (by another thread — a service's shutdown or
/// cancel path), workers stop taking new shards, already-running shards
/// finish, and a final checkpoint is written covering everything
/// completed so far. The returned report has
/// [`CampaignReport::is_complete`] `false`; a later resumed run merges
/// to the bit-identical final result an uninterrupted run produces.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the checkpoint file exists but is
/// malformed, belongs to a different campaign, or cannot be written.
pub fn run_resumable_interruptible<A, F, P>(
    cfg: &CampaignConfig,
    policy: &CheckpointPolicy,
    interrupt: Option<&AtomicBool>,
    experiment: F,
    on_progress: P,
) -> Result<CampaignReport<A>, CheckpointError>
where
    A: Accumulator + Persist,
    F: Fn(&mut StdRng, u64) -> A::Item + Sync,
    P: FnMut(&Progress),
{
    run_resumable_interruptible_exec(cfg, policy, interrupt, PerTrial(experiment), on_progress)
}

/// [`run_resumable_interruptible`] with an explicit [`TrialExec`]
/// range executor.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the checkpoint file exists but is
/// malformed, belongs to a different campaign, or cannot be written.
pub fn run_resumable_interruptible_exec<A, E, P>(
    cfg: &CampaignConfig,
    policy: &CheckpointPolicy,
    interrupt: Option<&AtomicBool>,
    exec: E,
    mut on_progress: P,
) -> Result<CampaignReport<A>, CheckpointError>
where
    A: Accumulator + Persist,
    E: TrialExec<A>,
    P: FnMut(&Progress),
{
    let identity = cfg.identity();
    let preloaded = if policy.resume {
        load_checkpoint::<A>(&policy.path, identity)?
    } else {
        Vec::new()
    };
    let mut since_save = 0u64;
    let mut io_error: Option<std::io::Error> = None;
    let report = {
        let mut save = |slots: &[Option<A>], finished: bool| {
            since_save += 1;
            if finished || since_save >= policy.every_shards {
                since_save = 0;
                let _ckpt_span = crate::obs::CHECKPOINT_WRITE.start();
                crate::obs::CHECKPOINT_WRITES.inc();
                if let Err(e) = write_checkpoint(&policy.path, identity, slots) {
                    io_error.get_or_insert(e);
                }
            }
        };
        run_impl(
            cfg,
            &exec,
            preloaded,
            Some(&mut save),
            interrupt,
            &mut on_progress,
        )
    };
    match io_error {
        Some(e) => Err(e.into()),
        None => Ok(report),
    }
}

#[allow(clippy::type_complexity, clippy::too_many_lines)]
fn run_impl<A, E, P>(
    cfg: &CampaignConfig,
    exec: &E,
    preloaded: Vec<(u64, A)>,
    mut save: Option<&mut dyn FnMut(&[Option<A>], bool)>,
    interrupt: Option<&AtomicBool>,
    on_progress: &mut P,
) -> CampaignReport<A>
where
    A: Accumulator,
    E: TrialExec<A>,
    P: FnMut(&Progress),
{
    let total_shards = cfg.total_shards();
    let mut slots: Vec<Option<A>> = (0..total_shards).map(|_| None).collect();
    let mut tracker = MetricsTracker::new(cfg.trials, total_shards);

    crate::obs::register_metrics();
    let mut resumed = 0u64;
    for (shard, acc) in preloaded {
        let slot = &mut slots[shard as usize];
        if slot.is_none() {
            let (lo, hi) = cfg.shard_bounds(shard);
            tracker.record_resumed(hi - lo, &acc.counters());
            crate::obs::SHARDS_RESUMED.inc();
            *slot = Some(acc);
            resumed += 1;
        }
    }

    let pending: Vec<u64> = (0..total_shards)
        .filter(|&s| slots[s as usize].is_none())
        .collect();
    let workers = cfg.resolved_threads();
    let dispatch_budget = cfg
        .stop_after_shards
        .map(|budget| budget.saturating_sub(resumed));
    let queue = ShardQueue::new(pending.iter().copied(), workers, dispatch_budget);
    let mut completed = resumed;
    let mut failed: Vec<FailedShard> = Vec::new();

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<WorkerMsg<A>>();
        let queue = &queue;
        for worker in 0..workers {
            let tx = tx.clone();
            let exec = &exec;
            scope.spawn(move || {
                while !interrupt.is_some_and(|f| f.load(Ordering::Acquire)) {
                    let Some(shard) = queue.next(worker) else {
                        break;
                    };
                    let (lo, hi) = cfg.shard_bounds(shard);
                    let _shard_span = crate::obs::SHARD_LATENCY.start();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut acc = A::default();
                        exec.run_range(cfg.seed, lo, hi, &mut acc);
                        acc
                    }));
                    let msg = match outcome {
                        Ok(acc) => WorkerMsg::Done { shard, acc },
                        Err(payload) => WorkerMsg::Failed {
                            shard,
                            message: panic_message(payload.as_ref()),
                        },
                    };
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
                // Spill this worker's span aggregates before the closure
                // returns: `thread::scope` unblocks on closure completion,
                // which can precede the thread's TLS destructors, so a
                // snapshot taken right after the scope would race the
                // destructor-driven spill.
                cppc_obs::flush();
            });
        }
        drop(tx);

        for msg in rx {
            match msg {
                WorkerMsg::Done { shard, acc } => {
                    let (lo, hi) = cfg.shard_bounds(shard);
                    tracker.record_executed(hi - lo, &acc.counters());
                    crate::obs::SHARDS_EXECUTED.inc();
                    crate::obs::TRIALS_EXECUTED.add(hi - lo);
                    slots[shard as usize] = Some(acc);
                }
                WorkerMsg::Failed { shard, message } => {
                    let (lo, hi) = cfg.shard_bounds(shard);
                    tracker.record_failed(hi - lo);
                    crate::obs::SHARDS_FAILED.inc();
                    cppc_obs::record_event("campaign.shard_failed", || {
                        format!("shard {shard} (trials {lo}..{hi}): {message}")
                    });
                    failed.push(FailedShard {
                        shard,
                        trial_lo: lo,
                        trial_hi: hi,
                        first_trial_seed: trial_seed(cfg.seed, lo),
                        message,
                    });
                }
            }
            completed += 1;
            if let Some(save) = save.as_mut() {
                save(&slots, false);
            }
            on_progress(&tracker.snapshot());
        }
    });

    if let Some(save) = save.as_mut() {
        save(&slots, true);
    }

    // Merge in ascending shard order — completion order never matters.
    let mut result = A::default();
    let mut trials_merged = 0u64;
    for (shard, slot) in slots.into_iter().enumerate() {
        if let Some(acc) = slot {
            let (lo, hi) = cfg.shard_bounds(shard as u64);
            trials_merged += hi - lo;
            result.merge(acc);
        }
    }
    failed.sort_by_key(|f| f.shard);

    let progress = tracker.snapshot();
    CampaignReport {
        result,
        trials_merged,
        total_shards,
        completed_shards: completed,
        resumed_shards: resumed,
        failed,
        elapsed_secs: progress.elapsed_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::rng::RngExt;

    /// Sums the first random u64 of every trial — order-sensitive if
    /// the engine ever merged out of order with wrapping arithmetic
    /// replaced; here used to detect stream divergence.
    #[derive(Debug, Default, PartialEq)]
    struct XorDigest {
        digest: u64,
        count: u64,
    }

    impl Accumulator for XorDigest {
        type Item = u64;
        fn record(&mut self, trial: u64, item: Self::Item) {
            // Bind the value to its trial index so reordering shows.
            self.digest ^= mix64(item.wrapping_add(trial));
            self.count += 1;
        }
        fn merge(&mut self, other: Self) {
            // Order-sensitive combiner: rotate before folding.
            self.digest = self.digest.rotate_left(1) ^ other.digest;
            self.count += other.count;
        }
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("trials", self.count)]
        }
    }

    impl Persist for XorDigest {
        fn to_json(&self) -> Json {
            Json::Arr(vec![Json::UInt(self.digest), Json::UInt(self.count)])
        }
        fn from_json(value: &Json) -> Option<Self> {
            let pair = value.as_arr()?;
            Some(XorDigest {
                digest: pair.first()?.as_u64()?,
                count: pair.get(1)?.as_u64()?,
            })
        }
    }

    fn digest_experiment(rng: &mut StdRng, _trial: u64) -> u64 {
        rng.random()
    }

    #[test]
    fn identical_at_any_thread_count() {
        let base = run::<XorDigest, _>(
            &CampaignConfig::new(0xFEED, 1000).shard_size(16),
            digest_experiment,
        );
        assert_eq!(base.result.count, 1000);
        assert!(base.is_complete());
        for threads in [2, 3, 8] {
            let parallel = run::<XorDigest, _>(
                &CampaignConfig::new(0xFEED, 1000)
                    .shard_size(16)
                    .threads(threads),
                digest_experiment,
            );
            assert_eq!(parallel.result, base.result, "threads = {threads}");
        }
    }

    #[test]
    fn trial_seed_is_order_free() {
        assert_ne!(trial_seed(1, 0), trial_seed(1, 1));
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
        assert_eq!(trial_seed(7, 42), trial_seed(7, 42));
    }

    #[test]
    fn short_final_shard_handled() {
        let report = run::<XorDigest, _>(
            &CampaignConfig::new(1, 100).shard_size(64),
            digest_experiment,
        );
        assert_eq!(report.total_shards, 2);
        assert_eq!(report.result.count, 100);
        assert_eq!(report.trials_merged, 100);
    }

    #[test]
    fn panics_are_contained() {
        let report = run::<XorDigest, _>(
            &CampaignConfig::new(3, 100).shard_size(10).threads(2),
            |rng, trial| {
                assert!(!(50..60).contains(&trial), "boom on trial {trial}");
                digest_experiment(rng, trial)
            },
        );
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!((f.trial_lo, f.trial_hi), (50, 60));
        assert_eq!(f.first_trial_seed, trial_seed(3, 50));
        assert!(f.message.contains("boom"), "{}", f.message);
        assert_eq!(report.result.count, 90);
        assert!(!report.is_complete());
    }

    #[test]
    fn stop_budget_interrupts() {
        let report = run::<XorDigest, _>(
            &CampaignConfig::new(5, 1000)
                .shard_size(10)
                .stop_after_shards(3),
            digest_experiment,
        );
        assert_eq!(report.completed_shards, 3);
        assert_eq!(report.result.count, 30);
        assert!(!report.is_complete());
    }

    #[test]
    fn resumable_equals_uninterrupted() {
        let dir = std::env::temp_dir().join("cppc_engine_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&path);
        let cfg = CampaignConfig::new(0xAB, 500).shard_size(16);
        let policy = CheckpointPolicy {
            path: path.clone(),
            every_shards: 1,
            resume: true,
        };

        // Interrupt after ~7 shards.
        let partial = run_resumable::<XorDigest, _, _>(
            &cfg.clone().stop_after_shards(7),
            &policy,
            digest_experiment,
            |_| {},
        )
        .unwrap();
        assert!(!partial.is_complete());

        // Resume and compare with an uninterrupted run.
        let resumed =
            run_resumable::<XorDigest, _, _>(&cfg, &policy, digest_experiment, |_| {}).unwrap();
        assert!(resumed.is_complete());
        assert!(resumed.resumed_shards >= 7);
        let oneshot = run::<XorDigest, _>(&cfg, digest_experiment);
        assert_eq!(resumed.result, oneshot.result);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn progress_reports_flow() {
        let mut snapshots = 0u64;
        let mut last_done = 0u64;
        let report = run_with_progress::<XorDigest, _, _>(
            &CampaignConfig::new(9, 200).shard_size(50),
            digest_experiment,
            |p| {
                snapshots += 1;
                assert!(p.trials_done >= last_done);
                last_done = p.trials_done;
                assert_eq!(p.trials_total, 200);
            },
        );
        assert_eq!(snapshots, 4);
        assert_eq!(last_done, 200);
        assert!(report.is_complete());
    }

    #[test]
    fn zero_threads_resolves_to_hardware() {
        let cfg = CampaignConfig::new(0, 1000).threads(0);
        assert!(cfg.resolved_threads() >= 1);
        // Never more workers than shards.
        let tiny = CampaignConfig::new(0, 1).threads(64);
        assert_eq!(tiny.resolved_threads(), 1);
    }

    #[test]
    fn counters_surface_in_progress() {
        let mut seen = Vec::new();
        let _ = run_with_progress::<XorDigest, _, _>(
            &CampaignConfig::new(2, 64).shard_size(64),
            digest_experiment,
            |p| seen = p.counters.clone(),
        );
        assert_eq!(seen, vec![("trials", 64)]);
    }
}
