//! `cppc-campaign` — parallel deterministic campaign engine.
//!
//! Every headline result of the CPPC reproduction is a *campaign*:
//! thousands of independent seeded experiments (fault injections,
//! Monte Carlo MTTF trials, per-profile trace sweeps) whose outcomes
//! are merged into one report. This crate runs such campaigns across
//! worker threads while keeping the merged result **bit-identical at
//! any thread count**, and carries the supporting infrastructure:
//!
//! * [`engine`] — sharded work-stealing execution, order-independent
//!   merging, worker-panic containment;
//! * [`checkpoint`] — periodic JSON checkpoints and resume;
//! * [`metrics`] — live trials/sec, per-outcome counters and ETA;
//! * [`snapshot`] — per-process pool of warm trial contexts, so each
//!   worker simulates the warmup prefix once and every later trial
//!   restores it in place;
//! * [`rng`] — the workspace's self-contained deterministic PRNGs
//!   (SplitMix64, xorshift128+), also used by every other crate so the
//!   workspace builds fully offline;
//! * [`json`] — the dependency-free JSON used by checkpoints and
//!   benchmark baselines.
//!
//! # Example
//!
//! ```
//! use cppc_campaign::{run, Accumulator, CampaignConfig};
//! use cppc_campaign::rng::{rngs::StdRng, RngExt};
//!
//! #[derive(Default)]
//! struct Heads(u64);
//!
//! impl Accumulator for Heads {
//!     type Item = bool;
//!     fn record(&mut self, _trial: u64, heads: bool) {
//!         self.0 += u64::from(heads);
//!     }
//!     fn merge(&mut self, other: Self) {
//!         self.0 += other.0;
//!     }
//! }
//!
//! let cfg = CampaignConfig::new(0xC0FFEE, 10_000).threads(4);
//! let report = run::<Heads, _>(&cfg, |rng: &mut StdRng, _| rng.random_bool(0.5));
//! assert!(report.is_complete());
//! // Identical to the 1-thread result, bit for bit:
//! let seq = run::<Heads, _>(&cfg.clone().threads(1), |rng, _| rng.random_bool(0.5));
//! assert_eq!(report.result.0, seq.result.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod rng;
pub mod snapshot;

pub use checkpoint::{CampaignIdentity, CheckpointError, Persist};
pub use engine::{
    run, run_exec, run_resumable, run_resumable_exec, run_resumable_interruptible,
    run_resumable_interruptible_exec, run_with_progress, run_with_progress_exec, trial_rng,
    trial_seed, Accumulator, CampaignConfig, CampaignReport, CheckpointPolicy, FailedShard,
    PerTrial, TrialExec, DEFAULT_SHARD_SIZE,
};
pub use metrics::Progress;
pub use snapshot::WarmPool;
