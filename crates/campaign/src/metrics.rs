//! Live campaign metrics: throughput, per-outcome counters and ETA.
//!
//! The engine reports a [`Progress`] snapshot to the caller every time
//! a shard completes; consumers (the CLI, bench binaries) render it
//! however they like. Counter labels come from
//! [`Accumulator::counters`](crate::Accumulator::counters), so a
//! fault-injection campaign surfaces live Masked / Corrected / DUE /
//! SDC counts while a Monte Carlo campaign surfaces trial counts only.

use std::time::Instant;

/// A point-in-time view of a running campaign.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Trials finished so far (including trials of failed shards).
    pub trials_done: u64,
    /// Total trials in the campaign.
    pub trials_total: u64,
    /// Shards finished so far.
    pub shards_done: u64,
    /// Total shards in the campaign.
    pub shards_total: u64,
    /// Shards restored from a checkpoint rather than executed.
    pub shards_resumed: u64,
    /// Shards whose worker panicked.
    pub shards_failed: u64,
    /// Seconds since the engine started.
    pub elapsed_secs: f64,
    /// Trials per second, measured over executed (non-resumed) work.
    pub trials_per_sec: f64,
    /// Estimated seconds until completion (0 when unknown or done).
    pub eta_secs: f64,
    /// Live outcome counters merged over completed shards, labelled by
    /// the accumulator (e.g. `Masked` / `Corrected` / `DUE` / `SDC`).
    pub counters: Vec<(&'static str, u64)>,
}

impl Progress {
    /// One-line human-readable rendering, e.g. for a progress ticker.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{}/{} trials  {:.0}/s  eta {:.0}s",
            self.trials_done, self.trials_total, self.trials_per_sec, self.eta_secs
        );
        for (label, count) in &self.counters {
            line.push_str(&format!("  {label} {count}"));
        }
        if self.shards_failed > 0 {
            line.push_str(&format!("  [{} shard(s) FAILED]", self.shards_failed));
        }
        line
    }
}

/// Tracks wall-clock state across shard completions and produces
/// [`Progress`] snapshots.
#[derive(Debug)]
pub(crate) struct MetricsTracker {
    started: Instant,
    trials_total: u64,
    shards_total: u64,
    trials_done: u64,
    executed_trials: u64,
    shards_done: u64,
    shards_resumed: u64,
    shards_failed: u64,
    counters: Vec<(&'static str, u64)>,
}

impl MetricsTracker {
    pub(crate) fn new(trials_total: u64, shards_total: u64) -> Self {
        MetricsTracker {
            started: Instant::now(),
            trials_total,
            shards_total,
            trials_done: 0,
            executed_trials: 0,
            shards_done: 0,
            shards_resumed: 0,
            shards_failed: 0,
            counters: Vec::new(),
        }
    }

    pub(crate) fn record_resumed(&mut self, trials: u64, counters: &[(&'static str, u64)]) {
        self.trials_done += trials;
        self.shards_done += 1;
        self.shards_resumed += 1;
        self.add_counters(counters);
    }

    pub(crate) fn record_executed(&mut self, trials: u64, counters: &[(&'static str, u64)]) {
        self.trials_done += trials;
        self.executed_trials += trials;
        self.shards_done += 1;
        self.add_counters(counters);
    }

    pub(crate) fn record_failed(&mut self, trials: u64) {
        self.trials_done += trials;
        self.executed_trials += trials;
        self.shards_done += 1;
        self.shards_failed += 1;
    }

    fn add_counters(&mut self, extra: &[(&'static str, u64)]) {
        for &(label, count) in extra {
            match self.counters.iter_mut().find(|(l, _)| *l == label) {
                Some((_, total)) => *total += count,
                None => self.counters.push((label, count)),
            }
        }
    }

    #[allow(clippy::cast_precision_loss)]
    pub(crate) fn snapshot(&self) -> Progress {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.executed_trials as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.trials_total.saturating_sub(self.trials_done);
        let eta = if rate > 0.0 {
            remaining as f64 / rate
        } else {
            0.0
        };
        Progress {
            trials_done: self.trials_done,
            trials_total: self.trials_total,
            shards_done: self.shards_done,
            shards_total: self.shards_total,
            shards_resumed: self.shards_resumed,
            shards_failed: self.shards_failed,
            elapsed_secs: elapsed,
            trials_per_sec: rate,
            eta_secs: eta,
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates() {
        let mut t = MetricsTracker::new(100, 10);
        t.record_executed(10, &[("Corrected", 7), ("DUE", 3)]);
        t.record_executed(10, &[("Corrected", 9), ("SDC", 1)]);
        t.record_resumed(10, &[("Corrected", 10)]);
        t.record_failed(10);
        let p = t.snapshot();
        assert_eq!(p.trials_done, 40);
        assert_eq!(p.shards_done, 4);
        assert_eq!(p.shards_resumed, 1);
        assert_eq!(p.shards_failed, 1);
        assert_eq!(p.counters, vec![("Corrected", 26), ("DUE", 3), ("SDC", 1)]);
    }

    #[test]
    fn summary_line_mentions_counters_and_failures() {
        let mut t = MetricsTracker::new(20, 2);
        t.record_executed(10, &[("Masked", 10)]);
        t.record_failed(10);
        let line = t.snapshot().summary_line();
        assert!(line.contains("Masked 10"), "{line}");
        assert!(line.contains("FAILED"), "{line}");
        assert!(line.contains("20/20 trials"), "{line}");
    }
}
