//! Campaign checkpoint files: periodic JSON snapshots of completed
//! shards so an interrupted campaign resumes without redoing work.
//!
//! A checkpoint records the campaign's identity (seed, trial count,
//! shard size) plus each completed shard's serialized accumulator
//! state. On resume the identity must match exactly — a checkpoint
//! from a different campaign is rejected rather than silently mixed
//! in. Files are written atomically (temp file + rename) so a crash
//! mid-write never corrupts an existing checkpoint.

use std::io;
use std::path::Path;

use crate::json::Json;

/// Serialization of an accumulator for checkpointing.
pub trait Persist: Sized {
    /// Serializes the accumulator state.
    fn to_json(&self) -> Json;
    /// Restores the state written by [`Persist::to_json`]; `None` on
    /// malformed input.
    fn from_json(value: &Json) -> Option<Self>;
}

/// The campaign identity a checkpoint is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignIdentity {
    /// Master seed.
    pub seed: u64,
    /// Total trials.
    pub trials: u64,
    /// Trials per shard.
    pub shard_size: u64,
}

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading the file failed (other than not existing).
    Io(io::Error),
    /// The file is not a valid checkpoint document.
    Malformed(String),
    /// The checkpoint belongs to a different campaign configuration.
    IdentityMismatch {
        /// Identity recorded in the file.
        found: CampaignIdentity,
        /// Identity of the campaign being run.
        expected: CampaignIdentity,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::IdentityMismatch { found, expected } => write!(
                f,
                "checkpoint is for a different campaign \
                 (file: seed {} trials {} shard_size {}; \
                 run: seed {} trials {} shard_size {})",
                found.seed,
                found.trials,
                found.shard_size,
                expected.seed,
                expected.trials,
                expected.shard_size
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const VERSION: u64 = 1;

/// Serializes completed shards into a checkpoint document.
pub(crate) fn checkpoint_document<A: Persist>(
    identity: CampaignIdentity,
    slots: &[Option<A>],
) -> Json {
    let shards: Vec<Json> = slots
        .iter()
        .enumerate()
        .filter_map(|(id, slot)| {
            slot.as_ref()
                .map(|acc| Json::Arr(vec![Json::UInt(id as u64), acc.to_json()]))
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::UInt(VERSION)),
        ("seed".into(), Json::UInt(identity.seed)),
        ("trials".into(), Json::UInt(identity.trials)),
        ("shard_size".into(), Json::UInt(identity.shard_size)),
        ("shards".into(), Json::Arr(shards)),
    ])
}

/// Writes a checkpoint atomically.
pub(crate) fn write_checkpoint<A: Persist>(
    path: &Path,
    identity: CampaignIdentity,
    slots: &[Option<A>],
) -> io::Result<()> {
    let doc = checkpoint_document(identity, slots).to_string_compact();
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, path)
}

/// Loads completed shards from `path`. A missing file is an empty
/// resume (fresh start); any other failure is an error.
pub(crate) fn load_checkpoint<A: Persist>(
    path: &Path,
    expected: CampaignIdentity,
) -> Result<Vec<(u64, A)>, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let doc = Json::parse(&text).map_err(CheckpointError::Malformed)?;
    let field = |name: &str| {
        doc.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Malformed(format!("missing field '{name}'")))
    };
    if field("version")? != VERSION {
        return Err(CheckpointError::Malformed("unsupported version".into()));
    }
    let found = CampaignIdentity {
        seed: field("seed")?,
        trials: field("trials")?,
        shard_size: field("shard_size")?,
    };
    if found != expected {
        return Err(CheckpointError::IdentityMismatch { found, expected });
    }
    let shards = doc
        .get("shards")
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Malformed("missing 'shards' array".into()))?;
    let total_shards = expected.trials.div_ceil(expected.shard_size);
    let mut out = Vec::with_capacity(shards.len());
    for entry in shards {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| CheckpointError::Malformed("shard entry is not a pair".into()))?;
        let id = pair[0]
            .as_u64()
            .filter(|&id| id < total_shards)
            .ok_or_else(|| CheckpointError::Malformed("bad shard id".into()))?;
        let acc = A::from_json(&pair[1])
            .ok_or_else(|| CheckpointError::Malformed(format!("bad state for shard {id}")))?;
        out.push((id, acc));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, PartialEq)]
    struct Count(u64);

    impl Persist for Count {
        fn to_json(&self) -> Json {
            Json::UInt(self.0)
        }
        fn from_json(value: &Json) -> Option<Self> {
            value.as_u64().map(Count)
        }
    }

    fn identity() -> CampaignIdentity {
        CampaignIdentity {
            seed: 7,
            trials: 100,
            shard_size: 10,
        }
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("cppc_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        let slots = vec![Some(Count(3)), None, Some(Count(5))];
        write_checkpoint(&path, identity(), &slots).unwrap();
        let loaded = load_checkpoint::<Count>(&path, identity()).unwrap();
        assert_eq!(loaded, vec![(0, Count(3)), (2, Count(5))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_fresh_start() {
        let path = std::env::temp_dir().join("cppc_ckpt_does_not_exist.json");
        let loaded = load_checkpoint::<Count>(&path, identity()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn identity_mismatch_rejected() {
        let dir = std::env::temp_dir().join("cppc_ckpt_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        write_checkpoint(&path, identity(), &[Some(Count(1))]).unwrap();
        let other = CampaignIdentity {
            seed: 8,
            ..identity()
        };
        let err = load_checkpoint::<Count>(&path, other).unwrap_err();
        assert!(matches!(err, CheckpointError::IdentityMismatch { .. }));
        assert!(err.to_string().contains("different campaign"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_rejected() {
        let dir = std::env::temp_dir().join("cppc_ckpt_malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            load_checkpoint::<Count>(&path, identity()),
            Err(CheckpointError::Malformed(_))
        ));
        std::fs::write(&path, r#"{"version":1,"seed":7}"#).unwrap();
        assert!(matches!(
            load_checkpoint::<Count>(&path, identity()),
            Err(CheckpointError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_shard_id_rejected() {
        let dir = std::env::temp_dir().join("cppc_ckpt_oob");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        let doc = r#"{"version":1,"seed":7,"trials":100,"shard_size":10,"shards":[[99,1]]}"#;
        std::fs::write(&path, doc).unwrap();
        assert!(matches!(
            load_checkpoint::<Count>(&path, identity()),
            Err(CheckpointError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
