//! Self-contained deterministic PRNGs for the whole workspace.
//!
//! The workspace builds with zero network access, so it carries its own
//! random-number generators instead of depending on the `rand` crate:
//!
//! * [`SplitMix64`] — the classic 64-bit finalizer-based generator.
//!   Trivially seedable from any `u64`, it is what the campaign engine
//!   uses to derive independent per-trial streams (see
//!   [`trial_seed`](crate::trial_seed)).
//! * [`Xorshift128Plus`] — Vigna's xorshift128+, a fast general-purpose
//!   generator seeded through SplitMix64. Exported as
//!   [`rngs::StdRng`], the workspace's default experiment RNG.
//!
//! The trait surface deliberately mirrors the subset of `rand`'s API
//! the workspace uses (`seed_from_u64`, `random`, `random_range`,
//! `random_bool`), so call sites only swap the `use` line.
//!
//! Every generator here is fully deterministic: the same seed produces
//! the same stream on every platform, thread count and run — the
//! property all campaign reproducibility guarantees rest on.

/// Core source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] stream.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience methods over any [`RngCore`] — the workspace-facing API.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::generate(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// SplitMix64's 64-bit avalanche finalizer: a bijective mixer with full
/// avalanche, usable standalone to decorrelate structured inputs such
/// as `(seed, trial)` pairs.
#[must_use]
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The odd constant SplitMix64 steps its state by (the golden ratio).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 (Steele, Lea & Flood 2014): one addition and one mix per
/// output, equidistributed over its full 2^64 period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// Vigna's xorshift128+: two words of state, 2^128 − 1 period, and the
/// workspace's default experiment generator ([`rngs::StdRng`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift128Plus {
    s0: u64,
    s1: u64,
}

impl SeedableRng for Xorshift128Plus {
    /// Seeds via SplitMix64 as Vigna recommends, so nearby seeds still
    /// yield decorrelated streams. The state is never all-zero.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64();
        let mut s1 = sm.next_u64();
        if s0 == 0 && s1 == 0 {
            s1 = GOLDEN_GAMMA;
        }
        Xorshift128Plus { s0, s1 }
    }
}

impl RngCore for Xorshift128Plus {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard experiment RNG.
    pub type StdRng = super::Xorshift128Plus;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Take the high bits: xorshift+ lowest bits are weakest.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_wrap)]
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                <$u>::generate(rng) as $t
            }
        }
    )*};
}

impl_standard_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw from `[0, span)` by 128-bit multiply-shift (Lemire).
/// The bias is at most `span / 2^64` — immaterial for the spans the
/// workspace samples — and each draw consumes exactly one stream word,
/// which keeps campaign streams aligned and reproducible.
#[allow(clippy::cast_possible_truncation)]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::generate(rng);
                }
                let span = (hi - lo) as u64 + 1;
                lo + below(rng, span) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::generate(rng);
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain
        // SplitMix64 implementation (Vigna).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.random_range(-3i32..3);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn unit_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(rng.random_range(4u32..5), 4);
            assert_eq!(rng.random_range(7u64..=7), 7);
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5u64..5);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn bool_probability_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Distinct inputs must give distinct outputs (spot check).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(17);
        // Must not panic or hang on the degenerate full-width range.
        let _: u64 = rng.random_range(0u64..=u64::MAX);
        let _: u8 = rng.random_range(0u8..=u8::MAX);
    }
}
