//! Minimal hand-rolled JSON — the checkpoint and metrics file format.
//!
//! The workspace builds fully offline, so instead of `serde` the
//! campaign engine carries a small JSON value type with a writer and a
//! recursive-descent parser. It supports the complete JSON grammar with
//! one deliberate refinement: integers without fraction or exponent are
//! kept as `u64`/`i64` ([`Json::UInt`]/[`Json::Int`]) so 64-bit seeds
//! and counters round-trip exactly. Floats that must round-trip
//! bit-exactly (checkpointed accumulator sums) are stored as their IEEE
//! bit pattern via [`Json::from_f64_bits`]/[`Json::as_f64_bits`].

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (no fraction/exponent, no sign).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Stores an `f64` bit-exactly (as its IEEE-754 bit pattern).
    #[must_use]
    pub fn from_f64_bits(v: f64) -> Json {
        Json::UInt(v.to_bits())
    }

    /// Reads back an [`Json::from_f64_bits`] value.
    #[must_use]
    pub fn as_f64_bits(&self) -> Option<f64> {
        self.as_u64().map(f64::from_bits)
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest string that parses back
                    // to the same f64.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates in checkpoints never occur; map
                            // unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().ok_or("empty char")?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Some(digits) = text.strip_prefix('-') {
                let v: i64 = format!("-{digits}")
                    .parse()
                    .map_err(|_| format!("bad integer '{text}'"))?;
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "18446744073709551615", "-42"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn u64_precision_preserved() {
        let v = Json::parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn float_roundtrip() {
        let v = Json::parse("0.30000000000000004").unwrap();
        assert_eq!(v.as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn f64_bits_roundtrip_exact() {
        let x = -1.234_567_890_123e-300;
        let v = Json::from_f64_bits(x);
        let text = v.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_f64_bits().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":{"d":null}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n\t\"k\" :  [ 1 , 2 ] }\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::Str("quote\" slash\\ tab\t nl\n ctrl\u{1}".into());
        let parsed = Json::parse(&original.to_string_compact()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"héllo ☂\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☂"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"abc").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(v.as_str().is_none());
    }
}
