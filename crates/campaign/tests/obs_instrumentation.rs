//! The engine's observability hooks: shard spans spill from worker
//! threads at exit, and executed/failed shard counts reach the global
//! registry.

use cppc_campaign::{run, Accumulator, CampaignConfig};

#[derive(Default)]
struct CountAcc(u64);

impl Accumulator for CountAcc {
    type Item = u64;
    fn record(&mut self, _trial: u64, _item: u64) {
        self.0 += 1;
    }
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

#[test]
fn shard_metrics_reach_global_registry() {
    let executed_before = cppc_campaign::obs::SHARDS_EXECUTED.get();
    let spans_before = cppc_campaign::obs::SHARD_LATENCY.stats();
    let trials_before = cppc_campaign::obs::TRIALS_EXECUTED.get();

    let cfg = CampaignConfig::new(0xB0B, 500).threads(2);
    let report: cppc_campaign::CampaignReport<CountAcc> = run(&cfg, |_rng, trial| trial);
    assert_eq!(report.result.0, 500);
    let shards = report.completed_shards;
    assert!(shards > 0);

    cppc_obs::flush();
    if cfg!(feature = "obs") {
        assert_eq!(
            cppc_campaign::obs::SHARDS_EXECUTED.get() - executed_before,
            shards
        );
        assert_eq!(
            cppc_campaign::obs::TRIALS_EXECUTED.get() - trials_before,
            500
        );
        let spans = cppc_campaign::obs::SHARD_LATENCY.stats();
        assert_eq!(
            spans.count - spans_before.count,
            shards,
            "each shard records exactly one latency span"
        );
    }
}
