//! CACTI-substitute analytical cache energy / area / latency model.
//!
//! The paper evaluates energy with CACTI 5.3 per-access numbers and
//! simple operation counting (§6.2): *"we count the number of read hits,
//! write hits, and read-before-write operations… the dynamic energy
//! consumption of each operation is estimated by CACTI"*, with one
//! special rule: *"For interleaved SECDED, we multiply the energy
//! consumption of bitlines by eight."*
//!
//! CACTI itself is a closed, table-driven C++ tool; this crate replaces
//! it with an analytical model calibrated to the two anchor points the
//! paper quotes (§4.8): a 32KB 2-way cache costs ≈240 pJ per access and
//! an 8KB direct-mapped cache has a 0.78 ns access time, both at 90nm.
//! Absolute joules are not the point — the figures the paper reports are
//! *normalised* to the one-dimensional-parity cache, so what must be
//! faithful is the decomposition (bitline vs. peripheral energy, code
//! array width, operation counts), which this model makes explicit.
//!
//! Modules:
//!
//! * [`tech`] — technology nodes and scaling.
//! * [`cache_energy`] — per-access read/write energy and access latency
//!   for a cache geometry plus its protection-code bits.
//! * [`area`] — storage overhead model (§5.1).
//! * [`scheme`] — per-scheme energy accounting combining operation
//!   counts with per-op energies (drives Figures 11 and 12).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod area;
pub mod cache_energy;
pub mod scheme;
pub mod tech;

pub use area::AreaModel;
pub use cache_energy::CacheEnergyModel;
pub use scheme::{AccessCounts, ProtectionKind, SchemeEnergy};
pub use tech::TechnologyNode;
