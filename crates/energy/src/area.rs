//! Storage/area overhead model (paper §5.1).
//!
//! Counts the extra storage bits each protection scheme adds to a cache:
//! code arrays, CPPC's register pairs, the barrel shifters' multiplexers
//! (converted to SRAM-bit-equivalents), and two-dimensional parity's
//! vertical rows. The paper's qualitative claim — CPPC ≈ parity ≪
//! SECDED — falls out of the counts.

/// Area accounting for one protected cache, in SRAM-bit equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    data_bits: f64,
    overhead_bits: f64,
}

/// Rough SRAM-bit-equivalents per barrel-shifter multiplexer (a 2:1 mux
/// is about the size of one and a half 6T cells).
const MUX_BIT_EQUIV: f64 = 1.5;

impl AreaModel {
    /// An unprotected cache of `size_bytes`.
    #[must_use]
    pub fn unprotected(size_bytes: usize) -> Self {
        AreaModel {
            data_bits: size_bytes as f64 * 8.0,
            overhead_bits: 0.0,
        }
    }

    /// One-dimensional parity: `ways` parity bits per 64-bit word.
    #[must_use]
    pub fn one_dim_parity(size_bytes: usize, ways: u32) -> Self {
        let data_bits = size_bytes as f64 * 8.0;
        AreaModel {
            data_bits,
            overhead_bits: data_bits * f64::from(ways) / 64.0,
        }
    }

    /// CPPC (§5.1): parity bits plus `pairs` register pairs of
    /// `register_bits` each (64 for L1, one L1 block for L2) plus two
    /// barrel shifters per pair.
    #[must_use]
    pub fn cppc(size_bytes: usize, parity_ways: u32, pairs: usize, register_bits: u32) -> Self {
        let base = Self::one_dim_parity(size_bytes, parity_ways);
        let registers = 2.0 * pairs as f64 * f64::from(register_bits);
        // CPPC shifter: n/8 * log2(n/8) muxes per shifter, two shifters.
        let lanes = f64::from(register_bits) / 8.0;
        let shifters = 2.0 * lanes * lanes.log2().max(0.0) * MUX_BIT_EQUIV;
        AreaModel {
            data_bits: base.data_bits,
            overhead_bits: base.overhead_bits + registers + shifters,
        }
    }

    /// SECDED: 8 check bits per 64-bit word (12.5%).
    #[must_use]
    pub fn secded(size_bytes: usize) -> Self {
        let data_bits = size_bytes as f64 * 8.0;
        AreaModel {
            data_bits,
            overhead_bits: data_bits * 8.0 / 64.0,
        }
    }

    /// Two-dimensional parity: horizontal parity bits plus
    /// `vertical_rows` rows of 64-bit vertical parity.
    #[must_use]
    pub fn two_dim_parity(size_bytes: usize, horizontal_ways: u32, vertical_rows: usize) -> Self {
        let base = Self::one_dim_parity(size_bytes, horizontal_ways);
        AreaModel {
            data_bits: base.data_bits,
            overhead_bits: base.overhead_bits + vertical_rows as f64 * 64.0,
        }
    }

    /// Protection storage overhead as a fraction of the data array.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_bits / self.data_bits
    }

    /// Absolute overhead bits.
    #[must_use]
    pub fn overhead_bits(&self) -> f64 {
        self.overhead_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1: usize = 32 * 1024;

    #[test]
    fn secded_is_12_5_percent() {
        assert!((AreaModel::secded(L1).overhead_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn word_parity_is_1_64th() {
        let a = AreaModel::one_dim_parity(L1, 1);
        assert!((a.overhead_fraction() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn cppc_barely_above_parity() {
        let parity = AreaModel::one_dim_parity(L1, 8);
        let cppc = AreaModel::cppc(L1, 8, 1, 64);
        let delta = cppc.overhead_fraction() - parity.overhead_fraction();
        assert!(delta > 0.0);
        assert!(delta < 0.001, "registers+shifters are negligible: {delta}");
    }

    #[test]
    fn cppc_correction_increment_is_negligible() {
        // §5.1's claim: adding *correction* to an existing parity cache
        // costs only registers + shifters, versus SECDED's 8 extra check
        // bits per word. Compare the increments over the parity base.
        let parity1 = AreaModel::one_dim_parity(L1, 1);
        let cppc1 = AreaModel::cppc(L1, 1, 1, 64);
        let correction_cost = cppc1.overhead_bits() - parity1.overhead_bits();
        let secded_cost = AreaModel::secded(L1).overhead_bits() - parity1.overhead_bits();
        assert!(
            correction_cost < secded_cost / 100.0,
            "{correction_cost} vs {secded_cost}"
        );
        // And a word-parity CPPC stays far below SECDED in total.
        assert!(cppc1.overhead_fraction() < 0.02);
    }

    #[test]
    fn more_pairs_cost_more() {
        let one = AreaModel::cppc(L1, 8, 1, 64);
        let eight = AreaModel::cppc(L1, 8, 8, 64);
        assert!(eight.overhead_bits() > one.overhead_bits());
    }

    #[test]
    fn two_dim_vertical_rows_counted() {
        let one = AreaModel::two_dim_parity(L1, 8, 1);
        let eight = AreaModel::two_dim_parity(L1, 8, 8);
        assert!((eight.overhead_bits() - one.overhead_bits() - 7.0 * 64.0).abs() < 1e-9);
    }

    #[test]
    fn unprotected_has_zero_overhead() {
        assert_eq!(AreaModel::unprotected(L1).overhead_fraction(), 0.0);
    }

    #[test]
    fn ordering_matches_paper() {
        // With the same detection budget (8 parity bits/word ≈ SECDED's
        // 8 check bits/word), the increments order as: CPPC ≈ 2D-parity
        // (registers / one vertical row) ≪ anything adding code bits.
        let p = AreaModel::one_dim_parity(L1, 8).overhead_fraction();
        let c = AreaModel::cppc(L1, 8, 1, 64).overhead_fraction();
        let t = AreaModel::two_dim_parity(L1, 8, 1).overhead_fraction();
        assert!(p <= c, "correction adds something");
        assert!(c - p < 0.001, "but almost nothing");
        assert!(t - p < 0.001);
        // Word-parity CPPC vs SECDED: an order of magnitude apart.
        let c1 = AreaModel::cppc(L1, 1, 1, 64).overhead_fraction();
        let s = AreaModel::secded(L1).overhead_fraction();
        assert!(c1 * 6.0 < s, "{c1} vs {s}");
    }
}
