//! Per-access energy and latency of a cache array.
//!
//! The model decomposes a cache access into a **bitline** component
//! (precharge + swing of the columns actually selected — the part that
//! physical bit interleaving multiplies) and a **peripheral** component
//! (decoders, wordlines, sense amplifiers, output drivers).
//!
//! Calibration anchors (90nm, from the paper §4.8 / CACTI 5.3):
//!
//! * a 32KB 2-way cache ≈ 240 pJ per access;
//! * an 8KB direct-mapped cache ≈ 0.78 ns access time;
//! * SECDED with 8-way interleaving costs +42% over parity at L1 and
//!   +68% at L2 (Figures 11/12), which pins the bitline fraction at
//!   ≈6% for a 32KB array and ≈10% for a 1MB array — the fraction grows
//!   with capacity as bitlines lengthen, modelled logarithmically.

use crate::tech::TechnologyNode;

/// Reference per-access energy of the 32KB/2-way anchor at 90nm (pJ).
const ANCHOR_ENERGY_PJ: f64 = 240.0;
/// Anchor cache capacity for energy calibration.
const ANCHOR_ENERGY_BYTES: f64 = 32.0 * 1024.0;
/// Reference access time of the 8KB direct-mapped anchor at 90nm (ns).
const ANCHOR_LATENCY_NS: f64 = 0.78;
/// Anchor cache capacity for latency calibration.
const ANCHOR_LATENCY_BYTES: f64 = 8.0 * 1024.0;

/// Per-access energy/latency model for one cache array including its
/// protection-code bits.
///
/// # Example
///
/// ```
/// use cppc_energy::cache_energy::CacheEnergyModel;
/// use cppc_energy::tech::TechnologyNode;
///
/// // The paper's L1D with 8 parity bits per 64-bit word:
/// let m = CacheEnergyModel::new(32 * 1024, 2, 32, 8 * 4, 1, TechnologyNode::Nm90);
/// assert!(m.read_energy_pj() > 200.0 && m.read_energy_pj() < 320.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEnergyModel {
    read_pj: f64,
    write_pj: f64,
    bitline_read_pj: f64,
    latency_ns: f64,
}

impl CacheEnergyModel {
    /// Builds the model.
    ///
    /// * `size_bytes`, `associativity`, `block_bytes` — data array
    ///   dimensions.
    /// * `code_bits_per_block` — protection bits stored alongside each
    ///   block (e.g. `8 * words_per_block` for byte parity or word-level
    ///   SECDED).
    /// * `interleave_degree` — physical bit-interleaving degree: the
    ///   bitline component is multiplied by this (paper §6.2, rule from
    ///   \[12\]). Use 1 for non-interleaved arrays.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        size_bytes: usize,
        associativity: usize,
        block_bytes: usize,
        code_bits_per_block: usize,
        interleave_degree: u32,
        node: TechnologyNode,
    ) -> Self {
        assert!(
            size_bytes > 0 && associativity > 0 && block_bytes > 0 && interleave_degree > 0,
            "dimensions must be non-zero"
        );
        let size = size_bytes as f64;

        // Bitline fraction grows with capacity: ~6% at 32KB, ~10% at 1MB.
        let beta = (0.04 + 0.01 * (size / ANCHOR_LATENCY_BYTES).log2()).clamp(0.02, 0.25);

        // Total per-access energy scales sublinearly with capacity
        // (bigger arrays are banked) — square-root scaling against the
        // 32KB anchor, linear in the fraction of extra code bits.
        let data_bits_per_block = (block_bytes * 8) as f64;
        let width_factor = (data_bits_per_block + code_bits_per_block as f64) / data_bits_per_block;
        let assoc_factor = 1.0 + 0.1 * ((associativity as f64).log2());
        let base = ANCHOR_ENERGY_PJ * (size / ANCHOR_ENERGY_BYTES).sqrt() * assoc_factor / 1.1
            * node.energy_scale();

        let bitline = base * beta * width_factor * f64::from(interleave_degree);
        let peripheral = base * (1.0 - beta) * (1.0 + 0.3 * (width_factor - 1.0));
        let read = bitline + peripheral;

        let latency = node.latency_scale()
            * (0.2 + (ANCHOR_LATENCY_NS - 0.2) * (size / ANCHOR_LATENCY_BYTES).sqrt().sqrt());

        CacheEnergyModel {
            read_pj: read,
            write_pj: read * 1.05,
            bitline_read_pj: bitline,
            latency_ns: latency,
        }
    }

    /// Energy of one read access in picojoules.
    #[must_use]
    pub fn read_energy_pj(&self) -> f64 {
        self.read_pj
    }

    /// Energy of one write access in picojoules.
    #[must_use]
    pub fn write_energy_pj(&self) -> f64 {
        self.write_pj
    }

    /// The bitline component of a read (the part interleaving scales).
    #[must_use]
    pub fn bitline_read_energy_pj(&self) -> f64 {
        self.bitline_read_pj
    }

    /// Access latency in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Access latency in cycles at `freq_ghz`.
    #[must_use]
    pub fn latency_cycles(&self, freq_ghz: f64) -> u32 {
        (self.latency_ns * freq_ghz).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_parity(node: TechnologyNode) -> CacheEnergyModel {
        CacheEnergyModel::new(32 * 1024, 2, 32, 32, 1, node)
    }

    #[test]
    fn anchor_energy_reproduced() {
        // 32KB 2-way, no code bits, 90nm ≈ 240 pJ (±20%).
        let m = CacheEnergyModel::new(32 * 1024, 2, 32, 0, 1, TechnologyNode::Nm90);
        assert!(
            (m.read_energy_pj() - 240.0).abs() < 48.0,
            "got {}",
            m.read_energy_pj()
        );
    }

    #[test]
    fn anchor_latency_reproduced() {
        let m = CacheEnergyModel::new(8 * 1024, 1, 32, 0, 1, TechnologyNode::Nm90);
        assert!(
            (m.latency_ns() - 0.78).abs() < 0.1,
            "got {}",
            m.latency_ns()
        );
    }

    #[test]
    fn interleaving_multiplies_bitline_only() {
        let plain = CacheEnergyModel::new(32 * 1024, 2, 32, 32, 1, TechnologyNode::Nm90);
        let inter = CacheEnergyModel::new(32 * 1024, 2, 32, 32, 8, TechnologyNode::Nm90);
        let delta = inter.read_energy_pj() - plain.read_energy_pj();
        assert!(
            (delta - 7.0 * plain.bitline_read_energy_pj()).abs() < 1e-6,
            "interleaving adds exactly 7x the bitline energy"
        );
        // The paper's Figure 11 ratio: SECDED/parity ≈ 1.42 at L1 size.
        let ratio = inter.read_energy_pj() / plain.read_energy_pj();
        assert!((1.25..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn l2_interleaving_penalty_larger() {
        // Bigger array → larger bitline fraction → Figure 12's bigger
        // SECDED penalty (~1.68).
        let plain = CacheEnergyModel::new(1024 * 1024, 4, 32, 32, 1, TechnologyNode::Nm90);
        let inter = CacheEnergyModel::new(1024 * 1024, 4, 32, 32, 8, TechnologyNode::Nm90);
        let l2_ratio = inter.read_energy_pj() / plain.read_energy_pj();
        let l1 = l1_parity(TechnologyNode::Nm90);
        let l1i = CacheEnergyModel::new(32 * 1024, 2, 32, 32, 8, TechnologyNode::Nm90);
        let l1_ratio = l1i.read_energy_pj() / l1.read_energy_pj();
        assert!(l2_ratio > l1_ratio, "L2 {l2_ratio} vs L1 {l1_ratio}");
        assert!((1.5..2.0).contains(&l2_ratio), "L2 ratio {l2_ratio}");
    }

    #[test]
    fn code_bits_increase_energy_mildly() {
        let bare = CacheEnergyModel::new(32 * 1024, 2, 32, 0, 1, TechnologyNode::Nm90);
        let coded = l1_parity(TechnologyNode::Nm90);
        let ratio = coded.read_energy_pj() / bare.read_energy_pj();
        assert!(ratio > 1.0 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn technology_scaling_applies() {
        let e90 = l1_parity(TechnologyNode::Nm90).read_energy_pj();
        let e32 = l1_parity(TechnologyNode::Nm32).read_energy_pj();
        assert!((e32 / e90 - TechnologyNode::Nm32.energy_scale()).abs() < 1e-9);
    }

    #[test]
    fn bigger_cache_costs_more() {
        let small = CacheEnergyModel::new(32 * 1024, 2, 32, 0, 1, TechnologyNode::Nm32);
        let big = CacheEnergyModel::new(1024 * 1024, 4, 32, 0, 1, TechnologyNode::Nm32);
        assert!(big.read_energy_pj() > small.read_energy_pj() * 3.0);
        assert!(big.latency_ns() > small.latency_ns());
    }

    #[test]
    fn latency_cycles_rounds_up() {
        let m = l1_parity(TechnologyNode::Nm32);
        let cycles = m.latency_cycles(3.0);
        assert!(cycles >= 1);
        assert!((f64::from(cycles) - m.latency_ns() * 3.0) < 1.0);
    }

    #[test]
    fn write_slightly_above_read() {
        let m = l1_parity(TechnologyNode::Nm90);
        assert!(m.write_energy_pj() > m.read_energy_pj());
        assert!(m.write_energy_pj() < m.read_energy_pj() * 1.2);
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_size_panics() {
        let _ = CacheEnergyModel::new(0, 1, 32, 0, 1, TechnologyNode::Nm90);
    }
}
