//! Per-scheme dynamic-energy accounting (paper §6.2).
//!
//! Combines a cache's per-operation energies with the operation counts a
//! trace produced. The paper's counting rules:
//!
//! * every scheme pays for its read hits and write hits;
//! * **CPPC** additionally pays one word read per store to a dirty word
//!   (read-before-write) plus the barrel shifter + register XOR on every
//!   write;
//! * **SECDED** pays 8x bitline energy when physically interleaved;
//! * **two-dimensional parity** pays a read-before-write on *every*
//!   store and reads the *entire old cache line* on every miss fill.

use crate::cache_energy::CacheEnergyModel;
use crate::tech::TechnologyNode;

/// Barrel-shifter energy per rotation (§4.8, [9]), picojoules.
const SHIFTER_PJ: f64 = 1.5;
/// One 64-bit register XOR + write, picojoules (one gate level, §4.9).
const REGISTER_XOR_PJ: f64 = 0.5;

/// Operation counts extracted from a simulation, per the paper's §6.2
/// methodology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// Read hits.
    pub reads: u64,
    /// Write hits (plus fills counted as writes, if the caller chooses).
    pub writes: u64,
    /// Stores to already-dirty words (CPPC's word read-before-writes).
    pub stores_to_dirty: u64,
    /// Misses that fill a line (two-dimensional parity reads the old
    /// line on each).
    pub miss_fills: u64,
    /// Words per line (kept for reporting; a line read is a single
    /// full-width array access, so it does not scale the energy).
    pub words_per_line: u32,
    /// Stores elided as silent (silent-write-aware ECC: the incoming
    /// value matched the stored word, so no data or code write
    /// happened). A subset of `writes`; ignored by the other schemes.
    pub silent_writes: u64,
}

/// Which protection scheme is being priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionKind {
    /// `ways`-way interleaved parity, detection only.
    OneDimParity {
        /// Parity bits per 64-bit word.
        ways: u32,
    },
    /// CPPC with `ways`-way parity (register/shifter energy included).
    Cppc {
        /// Parity bits per 64-bit word.
        ways: u32,
    },
    /// SECDED per word; `interleaved` enables the 8x bitline multiplier.
    Secded {
        /// Physical 8-way bit interleaving.
        interleaved: bool,
    },
    /// Two-dimensional parity with `ways`-way horizontal parity.
    TwoDimParity {
        /// Horizontal parity bits per 64-bit word.
        ways: u32,
    },
    /// Silent-write-aware SECDED (non-interleaved): elided silent
    /// stores pay no write energy. The silent-store comparison shares
    /// the read-modify-write array access the store was already making,
    /// so only the saved write is priced.
    SilentWriteEcc,
    /// HARP-style on-die SECDED (non-interleaved, write-through). The
    /// in-array cost matches plain SECDED; write-through and profiling
    /// traffic is next-level traffic, outside this cache's energy.
    OnDieEcc,
}

impl ProtectionKind {
    /// Code bits this scheme stores per 64-bit word.
    #[must_use]
    pub fn code_bits_per_word(&self) -> u32 {
        match *self {
            ProtectionKind::OneDimParity { ways }
            | ProtectionKind::Cppc { ways }
            | ProtectionKind::TwoDimParity { ways } => ways,
            ProtectionKind::Secded { .. }
            | ProtectionKind::SilentWriteEcc
            | ProtectionKind::OnDieEcc => 8,
        }
    }

    /// The physical interleave degree the array pays for.
    #[must_use]
    pub fn interleave_degree(&self) -> u32 {
        match *self {
            ProtectionKind::Secded { interleaved: true } => 8,
            _ => 1,
        }
    }

    /// The pricing model for a `ProtectionScheme` selector name, as
    /// accepted by `cppc-cli campaign --scheme` (paper configurations:
    /// 8-way parity, interleaved SECDED).
    #[must_use]
    pub fn for_scheme(name: &str) -> Option<ProtectionKind> {
        match name {
            "cppc" => Some(ProtectionKind::Cppc { ways: 8 }),
            "parity1d" => Some(ProtectionKind::OneDimParity { ways: 8 }),
            "secded-interleaved" => Some(ProtectionKind::Secded { interleaved: true }),
            "parity2d" => Some(ProtectionKind::TwoDimParity { ways: 8 }),
            "silent-write-ecc" => Some(ProtectionKind::SilentWriteEcc),
            "harp-odecc" => Some(ProtectionKind::OnDieEcc),
            _ => None,
        }
    }
}

/// Energy accounting for one cache under one protection scheme.
///
/// # Example
///
/// ```
/// use cppc_energy::scheme::{AccessCounts, ProtectionKind, SchemeEnergy};
/// use cppc_energy::tech::TechnologyNode;
///
/// let cppc = SchemeEnergy::new(
///     32 * 1024, 2, 32, ProtectionKind::Cppc { ways: 8 }, TechnologyNode::Nm32);
/// let counts = AccessCounts { reads: 1000, writes: 500, stores_to_dirty: 150,
///                             miss_fills: 30, words_per_line: 4, silent_writes: 0 };
/// assert!(cppc.total_pj(&counts) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeEnergy {
    model: CacheEnergyModel,
    kind: ProtectionKind,
}

impl SchemeEnergy {
    /// Builds the per-op model for a cache of the given dimensions under
    /// `kind`.
    #[must_use]
    pub fn new(
        size_bytes: usize,
        associativity: usize,
        block_bytes: usize,
        kind: ProtectionKind,
        node: TechnologyNode,
    ) -> Self {
        let words_per_block = block_bytes / 8;
        let code_bits_per_block = kind.code_bits_per_word() as usize * words_per_block;
        let model = CacheEnergyModel::new(
            size_bytes,
            associativity,
            block_bytes,
            code_bits_per_block,
            kind.interleave_degree(),
            node,
        );
        SchemeEnergy { model, kind }
    }

    /// The underlying per-access model.
    #[must_use]
    pub fn model(&self) -> &CacheEnergyModel {
        &self.model
    }

    /// The scheme being priced.
    #[must_use]
    pub fn kind(&self) -> ProtectionKind {
        self.kind
    }

    /// Total dynamic energy in picojoules for the given operation
    /// counts, applying the scheme's extra-operation rules.
    #[must_use]
    pub fn total_pj(&self, counts: &AccessCounts) -> f64 {
        let r = self.model.read_energy_pj();
        let w = self.model.write_energy_pj();
        let base = counts.reads as f64 * r + counts.writes as f64 * w;
        match self.kind {
            ProtectionKind::OneDimParity { .. }
            | ProtectionKind::Secded { .. }
            | ProtectionKind::OnDieEcc => base,
            ProtectionKind::SilentWriteEcc => {
                // Elided silent stores pay no array write; everything
                // else is plain (non-interleaved) SECDED.
                base - counts.silent_writes.min(counts.writes) as f64 * w
            }
            ProtectionKind::Cppc { .. } => {
                // Read-before-write on stores to dirty words; shifter +
                // register XOR on every write and every RBW read.
                let rbw = counts.stores_to_dirty as f64 * r;
                let plumbing = (counts.writes + counts.stores_to_dirty) as f64
                    * (SHIFTER_PJ + REGISTER_XOR_PJ);
                base + rbw + plumbing
            }
            ProtectionKind::TwoDimParity { .. } => {
                // Every store: read-before-write of the old data plus a
                // write of the updated vertical parity row (the vertical
                // row lives in the array, unlike CPPC's registers).
                // Every miss: the entire old line is read (§2) — one
                // full-width array access — and the vertical row
                // rewritten. `writes` includes fills (the fill itself is
                // a write for every scheme), so the per-store term uses
                // writes minus fills.
                let stores = counts.writes.saturating_sub(counts.miss_fills) as f64;
                let store_rbw = stores * (r + w);
                let line_rbw = counts.miss_fills as f64 * (r + w);
                base + store_rbw + line_rbw
            }
        }
    }

    /// Energy normalised to a reference scheme's energy on the same
    /// counts (how Figures 11/12 present results).
    #[must_use]
    pub fn normalised_to(&self, reference: &SchemeEnergy, counts: &AccessCounts) -> f64 {
        self.total_pj(counts) / reference.total_pj(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1: (usize, usize, usize) = (32 * 1024, 2, 32);
    const L2: (usize, usize, usize) = (1024 * 1024, 4, 32);

    fn counts_l1() -> AccessCounts {
        // A plausible L1 mix: 2 loads per store, 30% of stores hit dirty
        // words, 3% miss rate.
        AccessCounts {
            reads: 10_000,
            writes: 5_000,
            stores_to_dirty: 1_500,
            miss_fills: 450,
            words_per_line: 4,
            silent_writes: 0,
        }
    }

    fn scheme(dims: (usize, usize, usize), kind: ProtectionKind) -> SchemeEnergy {
        SchemeEnergy::new(dims.0, dims.1, dims.2, kind, TechnologyNode::Nm32)
    }

    #[test]
    fn figure_11_ordering() {
        // 1D parity < CPPC < SECDED < 2D parity at L1.
        let counts = counts_l1();
        let parity = scheme(L1, ProtectionKind::OneDimParity { ways: 8 });
        let cppc = scheme(L1, ProtectionKind::Cppc { ways: 8 });
        let secded = scheme(L1, ProtectionKind::Secded { interleaved: true });
        let twodim = scheme(L1, ProtectionKind::TwoDimParity { ways: 8 });

        let e_par = parity.total_pj(&counts);
        let e_cppc = cppc.total_pj(&counts);
        let e_sec = secded.total_pj(&counts);
        let e_2d = twodim.total_pj(&counts);
        assert!(e_par < e_cppc, "{e_par} < {e_cppc}");
        assert!(e_cppc < e_sec, "{e_cppc} < {e_sec}");
        assert!(e_sec < e_2d, "{e_sec} < {e_2d}");
    }

    #[test]
    fn figure_11_cppc_overhead_band() {
        // Paper: CPPC L1 ≈ +14% over 1D parity (band: 5–25%).
        let counts = counts_l1();
        let parity = scheme(L1, ProtectionKind::OneDimParity { ways: 8 });
        let cppc = scheme(L1, ProtectionKind::Cppc { ways: 8 });
        let ratio = cppc.normalised_to(&parity, &counts);
        assert!((1.05..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn figure_11_secded_overhead_band() {
        // Paper: SECDED L1 ≈ +42% (band: 25–60%).
        let counts = counts_l1();
        let parity = scheme(L1, ProtectionKind::OneDimParity { ways: 8 });
        let secded = scheme(L1, ProtectionKind::Secded { interleaved: true });
        let ratio = secded.normalised_to(&parity, &counts);
        assert!((1.25..1.60).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn figure_12_l2_cppc_overhead_small() {
        // Paper: CPPC L2 ≈ +7% — fewer read-before-writes at L2.
        let counts = AccessCounts {
            reads: 1_000, // L1 misses
            writes: 400,  // L1 write-backs
            stores_to_dirty: 60,
            miss_fills: 80,
            words_per_line: 4,
            silent_writes: 0,
        };
        let parity = scheme(L2, ProtectionKind::OneDimParity { ways: 8 });
        let cppc = scheme(L2, ProtectionKind::Cppc { ways: 8 });
        let ratio = cppc.normalised_to(&parity, &counts);
        assert!((1.01..1.12).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mcf_style_miss_storm_blows_up_two_dim() {
        // Figure 12's mcf: ~80% miss rate makes 2D parity several times
        // costlier than CPPC.
        let counts = AccessCounts {
            reads: 1_000,
            writes: 300,
            stores_to_dirty: 50,
            miss_fills: 1_000,
            words_per_line: 4,
            silent_writes: 0,
        };
        let cppc = scheme(L2, ProtectionKind::Cppc { ways: 8 });
        let twodim = scheme(L2, ProtectionKind::TwoDimParity { ways: 8 });
        let ratio = twodim.total_pj(&counts) / cppc.total_pj(&counts);
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn code_bit_accessors() {
        assert_eq!(
            ProtectionKind::Secded { interleaved: true }.code_bits_per_word(),
            8
        );
        assert_eq!(ProtectionKind::Cppc { ways: 8 }.code_bits_per_word(), 8);
        assert_eq!(
            ProtectionKind::Secded { interleaved: true }.interleave_degree(),
            8
        );
        assert_eq!(
            ProtectionKind::Secded { interleaved: false }.interleave_degree(),
            1
        );
        assert_eq!(
            ProtectionKind::TwoDimParity { ways: 8 }.interleave_degree(),
            1
        );
    }

    #[test]
    fn zero_counts_zero_energy() {
        let cppc = scheme(L1, ProtectionKind::Cppc { ways: 8 });
        assert_eq!(cppc.total_pj(&AccessCounts::default()), 0.0);
    }

    #[test]
    fn silent_write_elision_saves_exactly_the_elided_writes() {
        let plain = scheme(L1, ProtectionKind::Secded { interleaved: false });
        let silent = scheme(L1, ProtectionKind::SilentWriteEcc);
        let mut counts = counts_l1();
        // No elisions: identical to non-interleaved SECDED.
        assert_eq!(silent.total_pj(&counts), plain.total_pj(&counts));
        // 40% silent stores: exactly those writes drop out.
        counts.silent_writes = 2_000;
        let saved = plain.total_pj(&counts) - silent.total_pj(&counts);
        let expected = 2_000.0 * silent.model().write_energy_pj();
        assert!((saved - expected).abs() < 1e-9, "{saved} vs {expected}");
        // And the result beats the interleaved baseline by construction.
        let interleaved = scheme(L1, ProtectionKind::Secded { interleaved: true });
        assert!(silent.total_pj(&counts) < interleaved.total_pj(&counts));
    }

    #[test]
    fn on_die_ecc_prices_like_plain_secded() {
        let counts = counts_l1();
        let plain = scheme(L1, ProtectionKind::Secded { interleaved: false });
        let odecc = scheme(L1, ProtectionKind::OnDieEcc);
        assert_eq!(odecc.total_pj(&counts), plain.total_pj(&counts));
        assert_eq!(ProtectionKind::OnDieEcc.interleave_degree(), 1);
        assert_eq!(ProtectionKind::OnDieEcc.code_bits_per_word(), 8);
    }

    #[test]
    fn for_scheme_maps_every_selector() {
        assert_eq!(
            ProtectionKind::for_scheme("cppc"),
            Some(ProtectionKind::Cppc { ways: 8 })
        );
        assert_eq!(
            ProtectionKind::for_scheme("parity1d"),
            Some(ProtectionKind::OneDimParity { ways: 8 })
        );
        assert_eq!(
            ProtectionKind::for_scheme("secded-interleaved"),
            Some(ProtectionKind::Secded { interleaved: true })
        );
        assert_eq!(
            ProtectionKind::for_scheme("parity2d"),
            Some(ProtectionKind::TwoDimParity { ways: 8 })
        );
        assert_eq!(
            ProtectionKind::for_scheme("silent-write-ecc"),
            Some(ProtectionKind::SilentWriteEcc)
        );
        assert_eq!(
            ProtectionKind::for_scheme("harp-odecc"),
            Some(ProtectionKind::OnDieEcc)
        );
        assert_eq!(ProtectionKind::for_scheme("hamming"), None);
    }
}
