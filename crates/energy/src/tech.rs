//! Technology nodes and first-order scaling.
//!
//! Dynamic energy scales roughly with `C·V²`; with classical scaling
//! both capacitance and voltage shrink with feature size, so we apply an
//! `(f / 90nm)²` factor to the 90nm-calibrated energies and a linear
//! factor to wire-dominated latency. This is the level of fidelity the
//! relative comparisons need (the paper itself mixes 90nm shifter
//! numbers with 32nm evaluation parameters).

/// A CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyNode {
    /// 90 nm — the node CACTI numbers in §4.8 are quoted at.
    Nm90,
    /// 65 nm.
    Nm65,
    /// 45 nm.
    Nm45,
    /// 32 nm — the paper's evaluation node (Table 1).
    Nm32,
}

impl TechnologyNode {
    /// Feature size in nanometres.
    #[must_use]
    pub fn feature_nm(self) -> f64 {
        match self {
            TechnologyNode::Nm90 => 90.0,
            TechnologyNode::Nm65 => 65.0,
            TechnologyNode::Nm45 => 45.0,
            TechnologyNode::Nm32 => 32.0,
        }
    }

    /// Dynamic-energy scaling factor relative to 90nm (quadratic in
    /// feature size).
    #[must_use]
    pub fn energy_scale(self) -> f64 {
        let r = self.feature_nm() / 90.0;
        r * r
    }

    /// Latency scaling factor relative to 90nm (linear in feature size).
    #[must_use]
    pub fn latency_scale(self) -> f64 {
        self.feature_nm() / 90.0
    }
}

impl Default for TechnologyNode {
    /// The paper's evaluation node.
    fn default() -> Self {
        TechnologyNode::Nm32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_monotone() {
        let nodes = [
            TechnologyNode::Nm90,
            TechnologyNode::Nm65,
            TechnologyNode::Nm45,
            TechnologyNode::Nm32,
        ];
        for pair in nodes.windows(2) {
            assert!(pair[0].energy_scale() > pair[1].energy_scale());
            assert!(pair[0].latency_scale() > pair[1].latency_scale());
        }
    }

    #[test]
    fn ninety_nm_is_unity() {
        assert!((TechnologyNode::Nm90.energy_scale() - 1.0).abs() < 1e-12);
        assert!((TechnologyNode::Nm90.latency_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper_node() {
        assert_eq!(TechnologyNode::default(), TechnologyNode::Nm32);
    }
}
