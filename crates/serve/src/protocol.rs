//! The newline-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line with an `"op"` field;
//! every response is one line with `"ok": true|false`. The one
//! exception is `watch`, whose single request is answered by a stream
//! of `{"event": "progress", ...}` lines ending with one
//! `{"event": "end", ...}` line. Both sides use the workspace's
//! hand-rolled JSON, so the protocol needs no external dependencies
//! and round-trips 64-bit integers exactly.

use cppc_campaign::json::Json;

use crate::job::{JobId, JobSpec, Priority};

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a job; answers with its assigned id or backpressure.
    Submit {
        /// Submitting tenant (fair-share key).
        tenant: String,
        /// Scheduling lane.
        priority: Priority,
        /// What to run.
        spec: JobSpec,
    },
    /// One-shot state report for a job.
    Status(JobId),
    /// Final result document of a `done` job.
    Result(JobId),
    /// Cancel a queued or running job.
    Cancel(JobId),
    /// Summaries of all jobs, optionally one tenant's.
    List {
        /// Restrict to this tenant when set.
        tenant: Option<String>,
    },
    /// Snapshot of the daemon's metric registry.
    Metrics,
    /// Stream live progress until the job reaches a terminal state.
    Watch(JobId),
    /// Graceful daemon shutdown (checkpoint and suspend running jobs).
    Shutdown,
}

impl Request {
    /// Encodes the request as one wire object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let op = |name: &str| ("op".to_string(), Json::Str(name.into()));
        let id_obj =
            |name: &str, id: JobId| Json::Obj(vec![op(name), ("id".into(), Json::UInt(id))]);
        match self {
            Request::Submit {
                tenant,
                priority,
                spec,
            } => Json::Obj(vec![
                op("submit"),
                ("tenant".into(), Json::Str(tenant.clone())),
                ("priority".into(), Json::Str(priority.as_str().into())),
                ("spec".into(), spec.to_json()),
            ]),
            Request::Status(id) => id_obj("status", *id),
            Request::Result(id) => id_obj("result", *id),
            Request::Cancel(id) => id_obj("cancel", *id),
            Request::List { tenant } => {
                let mut pairs = vec![op("list")];
                if let Some(t) = tenant {
                    pairs.push(("tenant".into(), Json::Str(t.clone())));
                }
                Json::Obj(pairs)
            }
            Request::Metrics => Json::Obj(vec![op("metrics")]),
            Request::Watch(id) => id_obj("watch", *id),
            Request::Shutdown => Json::Obj(vec![op("shutdown")]),
        }
    }

    /// Decodes one wire object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field — the
    /// server sends it back verbatim as the error response.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request missing 'op'")?;
        let id = || {
            v.get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("'{op}' needs a numeric 'id'"))
        };
        match op {
            "submit" => {
                let tenant = v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or("'submit' needs a 'tenant'")?
                    .to_string();
                if tenant.is_empty() {
                    return Err("'tenant' must be non-empty".into());
                }
                let priority = match v.get("priority").and_then(Json::as_str) {
                    None => Priority::Normal,
                    Some(p) => Priority::parse(p)?,
                };
                let spec = JobSpec::from_json(v.get("spec").ok_or("'submit' needs a 'spec'")?)?;
                Ok(Request::Submit {
                    tenant,
                    priority,
                    spec,
                })
            }
            "status" => Ok(Request::Status(id()?)),
            "result" => Ok(Request::Result(id()?)),
            "cancel" => Ok(Request::Cancel(id()?)),
            "list" => Ok(Request::List {
                tenant: v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .map(ToString::to_string),
            }),
            "metrics" => Ok(Request::Metrics),
            "watch" => Ok(Request::Watch(id()?)),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// A successful response: `{"ok": true, ...fields}`.
#[must_use]
pub fn ok_response(fields: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// A failure response: `{"ok": false, "error": ..}` plus an optional
/// `retry_after_ms` backpressure hint.
#[must_use]
pub fn error_response(message: &str, retry_after_ms: Option<u64>) -> Json {
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
    ];
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms".into(), Json::UInt(ms)));
    }
    Json::Obj(pairs)
}

/// Whether a response line reports success.
#[must_use]
pub fn is_ok(response: &Json) -> bool {
    matches!(response.get("ok"), Some(Json::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Submit {
                tenant: "alice".into(),
                priority: Priority::High,
                spec: JobSpec::new(JobKind::Mbe, 1000, 0xC0DE),
            },
            Request::Status(3),
            Request::Result(4),
            Request::Cancel(5),
            Request::List { tenant: None },
            Request::List {
                tenant: Some("bob".into()),
            },
            Request::Metrics,
            Request::Watch(6),
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_json().to_string_compact();
            let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn submit_defaults_to_normal_priority() {
        let line = r#"{"op":"submit","tenant":"t","spec":{"kind":"mbe","trials":10,"seed":1}}"#;
        let req = Request::from_json(&Json::parse(line).unwrap()).unwrap();
        assert!(matches!(
            req,
            Request::Submit {
                priority: Priority::Normal,
                ..
            }
        ));
    }

    #[test]
    fn malformed_requests_name_the_defect() {
        let cases = [
            (r#"{"id":1}"#, "op"),
            (r#"{"op":"status"}"#, "id"),
            (r#"{"op":"fly"}"#, "fly"),
            (r#"{"op":"submit","tenant":""}"#, "tenant"),
        ];
        for (line, needle) in cases {
            let err = Request::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn response_builders() {
        let ok = ok_response(vec![("id".into(), Json::UInt(9))]);
        assert!(is_ok(&ok));
        assert_eq!(ok.get("id").and_then(Json::as_u64), Some(9));
        let err = error_response("queue full", Some(250));
        assert!(!is_ok(&err));
        assert_eq!(err.get("retry_after_ms").and_then(Json::as_u64), Some(250));
        assert!(!is_ok(&Json::parse("{}").unwrap()));
    }
}
