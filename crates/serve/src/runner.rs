//! Executes one job's campaign on the engine, with checkpointing and
//! cooperative interruption.
//!
//! The runner is where a [`JobSpec`] meets
//! [`cppc_campaign::run_resumable_interruptible`]: it resolves the
//! spec's kind to its experiment body (the same bodies
//! `cppc-cli campaign` uses, from [`cppc_bench::experiments`]), runs
//! under the job's checkpoint file, and reports one of three ends. An
//! `Interrupted` end means the engine drained in-flight shards and
//! wrote a final checkpoint — the caller decides whether that was a
//! cancel (terminal) or a shutdown suspension (the job stays `running`
//! in the journal and resumes bit-identically on restart).

use std::path::Path;
use std::sync::atomic::AtomicBool;

use cppc_bench::experiments::{
    inject_experiment, inject_geometry, load_trace, parse_config, parse_fault, parse_scheme,
    scheme_experiment, sleep_experiment, trace_experiment,
};
use cppc_campaign::json::Json;
use cppc_campaign::metrics::Progress;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::{
    run_resumable_interruptible, run_resumable_interruptible_exec, Accumulator, CampaignReport,
    CheckpointError, CheckpointPolicy, Persist,
};
use cppc_fault::campaign::{Outcome, OutcomeTally};
use cppc_reliability::montecarlo::{simulate_trial_into, MonteCarloAccumulator, MonteCarloConfig};

use crate::job::{JobKind, JobSpec};

/// How a job execution ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEnd {
    /// Every shard completed; `result` is the kind-specific final
    /// document (see [`tally_result_json`] / [`montecarlo_result_json`]).
    Complete {
        /// The job's final result document.
        result: Json,
    },
    /// The interrupt flag stopped the run early; progress is
    /// checkpointed and a resumed run merges bit-identically.
    Interrupted,
    /// A shard panicked or the checkpoint was unusable.
    Failed {
        /// Human-readable diagnostic.
        error: String,
    },
}

/// Runs `spec` to one of its three ends.
///
/// `ckpt_path` is the job's checkpoint file (created on first write,
/// resumed from when present), `every_shards` the checkpoint cadence,
/// `threads` the governor's grant, `interrupt` the cooperative stop
/// flag, and `on_progress` receives the engine's live [`Progress`]
/// snapshots.
pub fn execute(
    spec: &JobSpec,
    ckpt_path: &Path,
    every_shards: u64,
    threads: usize,
    interrupt: Option<&AtomicBool>,
    on_progress: impl FnMut(&Progress),
) -> RunEnd {
    let policy = CheckpointPolicy {
        path: ckpt_path.to_path_buf(),
        every_shards: every_shards.max(1),
        resume: true,
    };
    let cfg = spec.campaign_config(threads);
    match &spec.kind {
        JobKind::Inject { config, fault } => {
            let (Ok(config), Ok(fault)) = (parse_config(config), parse_fault(fault)) else {
                return RunEnd::Failed {
                    error: "spec no longer parses (config/fault)".into(),
                };
            };
            finish::<OutcomeTally>(
                run_resumable_interruptible(
                    &cfg,
                    &policy,
                    interrupt,
                    inject_experiment(inject_geometry(), config, fault),
                    on_progress,
                ),
                tally_result_json,
            )
        }
        JobKind::Scheme {
            scheme,
            config,
            fault,
        } => {
            let (Ok(scheme), Ok(config), Ok(fault)) = (
                parse_scheme(scheme),
                parse_config(config),
                parse_fault(fault),
            ) else {
                return RunEnd::Failed {
                    error: "spec no longer parses (scheme/config/fault)".into(),
                };
            };
            finish::<OutcomeTally>(
                run_resumable_interruptible(
                    &cfg,
                    &policy,
                    interrupt,
                    scheme_experiment(scheme, config, fault),
                    on_progress,
                ),
                tally_result_json,
            )
        }
        // The batched executor is bit-identical to the per-trial path
        // at any batch size, so checkpoints written by older daemons
        // (or by `--batch 1` runs) resume seamlessly through it.
        JobKind::Mbe => finish::<OutcomeTally>(
            run_resumable_interruptible_exec(
                &cfg,
                &policy,
                interrupt,
                cppc_bench::mbe::MbeBatchExec::solid(spec.batch),
                on_progress,
            ),
            tally_result_json,
        ),
        JobKind::Sleep { millis } => finish::<OutcomeTally>(
            run_resumable_interruptible(
                &cfg,
                &policy,
                interrupt,
                sleep_experiment(*millis),
                on_progress,
            ),
            tally_result_json,
        ),
        JobKind::Trace { path } => {
            // Load (and pre-decode) once; the experiment replays the
            // immutable batch per trial on every worker thread.
            let trace = match load_trace(path) {
                Ok(trace) => trace,
                Err(error) => return RunEnd::Failed { error },
            };
            finish::<OutcomeTally>(
                run_resumable_interruptible(
                    &cfg,
                    &policy,
                    interrupt,
                    trace_experiment(&trace),
                    on_progress,
                ),
                tally_result_json,
            )
        }
        // The sweep has its own parallel driver and per-config
        // checkpoint store, so it bypasses the shard engine: the job's
        // checkpoint *path* is reused as the base name of a sibling
        // directory holding one digest-keyed file per configuration,
        // which gives the same suspend/resume contract (interrupt →
        // `Interrupted`, restart resumes bit-identically from the
        // completed configs).
        JobKind::Explore { quick } => {
            let mut sweep = if *quick {
                cppc_explore::SweepSpec::quick_tier()
            } else {
                cppc_explore::SweepSpec::full_tier()
            };
            sweep.trials = spec.trials;
            sweep.campaign_seed = spec.seed;
            let opts = cppc_explore::SweepOptions {
                threads,
                checkpoint_dir: Some(ckpt_path.with_extension("explore.d")),
            };
            match cppc_explore::run_sweep(&sweep, &opts, interrupt) {
                Err(error) => RunEnd::Failed { error },
                Ok(cppc_explore::SweepOutcome::Interrupted { .. }) => RunEnd::Interrupted,
                Ok(cppc_explore::SweepOutcome::Complete(points)) => RunEnd::Complete {
                    result: cppc_explore::doc::sweep_doc(&sweep, &points),
                },
            }
        }
        JobKind::MonteCarlo {
            rate,
            domains,
            tavg,
        } => {
            let mc = MonteCarloConfig {
                faults_per_hour: *rate,
                domains: *domains as usize,
                tavg_hours: *tavg,
                trials: spec.trials as u32,
            };
            std::thread_local! {
                static LAST_FAULT: std::cell::RefCell<Vec<f64>> =
                    const { std::cell::RefCell::new(Vec::new()) };
            }
            finish::<MonteCarloAccumulator>(
                run_resumable_interruptible(
                    &cfg,
                    &policy,
                    interrupt,
                    move |rng: &mut StdRng, _trial| {
                        LAST_FAULT.with(|scratch| {
                            simulate_trial_into(&mc, rng, &mut scratch.borrow_mut())
                        })
                    },
                    on_progress,
                ),
                montecarlo_result_json,
            )
        }
    }
}

fn finish<A: Accumulator + Persist>(
    outcome: Result<CampaignReport<A>, CheckpointError>,
    render: impl FnOnce(&A) -> Json,
) -> RunEnd {
    match outcome {
        Err(e) => RunEnd::Failed {
            error: e.to_string(),
        },
        Ok(report) => {
            if let Some(f) = report.failed.first() {
                return RunEnd::Failed {
                    error: format!(
                        "shard {} (trials {}..{}) panicked: {}",
                        f.shard, f.trial_lo, f.trial_hi, f.message
                    ),
                };
            }
            if report.is_complete() {
                RunEnd::Complete {
                    result: render(&report.result),
                }
            } else {
                RunEnd::Interrupted
            }
        }
    }
}

/// The final result document of an outcome-tally campaign (`inject`,
/// `mbe`, `sleep`): the tally's own persisted form —
/// `{"masked":..,"corrected":..,"due":..,"sdc":..}`. `cppc-cli
/// campaign --json` prints exactly this, which is what the service
/// smoke gate compares against.
#[must_use]
pub fn tally_result_json(tally: &OutcomeTally) -> Json {
    tally.to_json()
}

/// The final result document of a `montecarlo` job: the accumulator's
/// exact sums (IEEE-754 bit patterns, so restart equality is exact)
/// plus the human-readable derived estimate.
#[must_use]
pub fn montecarlo_result_json(acc: &MonteCarloAccumulator) -> Json {
    let result = acc.finish();
    let mut pairs = match acc.to_json() {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("accumulator persists as an object"),
    };
    pairs.push(("mttf_hours".into(), Json::from_f64_bits(result.mttf_hours)));
    pairs.push((
        "std_error_hours".into(),
        Json::from_f64_bits(result.std_error_hours),
    ));
    pairs.push((
        "mean_faults_to_failure".into(),
        Json::from_f64_bits(result.mean_faults_to_failure),
    ));
    Json::Obj(pairs)
}

/// Classifies interrupted-vs-complete for tests without exposing the
/// engine report (re-exported for the integration suite).
#[must_use]
pub fn synthetic_outcome(rng: &mut StdRng, trial: u64) -> Outcome {
    cppc_bench::experiments::synthetic_outcome(rng, trial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use std::sync::atomic::Ordering;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cppc_serve_runner_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sleep_job_completes_and_matches_direct_engine_run() {
        let path = tmp("sleep_complete.json");
        let _ = std::fs::remove_file(&path);
        let spec = JobSpec {
            shard_size: 8,
            ..JobSpec::new(JobKind::Sleep { millis: 0 }, 96, 0xABCD)
        };
        let end = execute(&spec, &path, 4, 1, None, |_| {});
        let direct: OutcomeTally =
            cppc_campaign::run(&spec.campaign_config(1), sleep_experiment(0)).result;
        assert_eq!(
            end,
            RunEnd::Complete {
                result: tally_result_json(&direct)
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupt_then_resume_is_bit_identical() {
        let path = tmp("interrupt_resume.json");
        let _ = std::fs::remove_file(&path);
        let spec = JobSpec {
            shard_size: 4,
            ..JobSpec::new(JobKind::Sleep { millis: 1 }, 64, 0x1234)
        };
        // Interrupt as soon as the first progress snapshot arrives.
        let flag = AtomicBool::new(false);
        let end = execute(&spec, &path, 1, 1, Some(&flag), |_| {
            flag.store(true, Ordering::Release);
        });
        assert_eq!(end, RunEnd::Interrupted);
        assert!(path.exists(), "interruption must leave a checkpoint");
        // Resume to completion and compare with an uninterrupted run.
        let resumed = execute(&spec, &path, 4, 1, None, |_| {});
        let direct: OutcomeTally =
            cppc_campaign::run(&spec.campaign_config(1), sleep_experiment(1)).result;
        assert_eq!(
            resumed,
            RunEnd::Complete {
                result: tally_result_json(&direct)
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explore_job_interrupts_before_work_and_resumes_to_sweep_doc() {
        let ckpt = tmp("explore_interrupt.json");
        let ckpt_dir = ckpt.with_extension("explore.d");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let spec = JobSpec::new(JobKind::Explore { quick: true }, 2, 0xE87A);
        // A pre-raised flag must yield `Interrupted` without running a
        // single configuration (so cancel/shutdown is prompt).
        let flag = AtomicBool::new(true);
        let end = execute(&spec, &ckpt, 4, 1, Some(&flag), |_| {});
        assert_eq!(end, RunEnd::Interrupted);
        assert!(
            !ckpt_dir.exists() || std::fs::read_dir(&ckpt_dir).unwrap().next().is_none(),
            "no config may complete under a pre-raised interrupt"
        );
        // Resume to completion: the result is the sweep document for
        // the quick tier with the job's trials/seed substituted in.
        let end = execute(&spec, &ckpt, 4, 2, None, |_| {});
        let mut sweep = cppc_explore::SweepSpec::quick_tier();
        sweep.trials = 2;
        sweep.campaign_seed = 0xE87A;
        match end {
            RunEnd::Complete { result } => {
                assert_eq!(
                    result.get("schema").and_then(Json::as_str),
                    Some("cppc-explore/1")
                );
                assert_eq!(
                    result
                        .get("summary")
                        .and_then(|s| s.get("configs"))
                        .and_then(Json::as_u64),
                    Some(sweep.enumerate().len() as u64)
                );
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn trace_job_completes_and_matches_direct_engine_run() {
        let ckpt = tmp("trace_complete.json");
        let trace_path = tmp("trace_complete.cppct");
        let _ = std::fs::remove_file(&ckpt);
        let p = &cppc_workloads::spec2000_profiles()[0];
        let trace = cppc_workloads::SharedTrace::generate(p, 0x7ACE, 1_000);
        cppc_workloads::binfmt::write_bin_trace_file(&trace_path, trace.ops()).unwrap();
        let spec = JobSpec {
            shard_size: 8,
            ..JobSpec::new(
                JobKind::Trace {
                    path: trace_path.display().to_string(),
                },
                32,
                0xABCD,
            )
        };
        let end = execute(&spec, &ckpt, 4, 2, None, |_| {});
        let direct: OutcomeTally =
            cppc_campaign::run(&spec.campaign_config(1), trace_experiment(&trace)).result;
        assert_eq!(
            end,
            RunEnd::Complete {
                result: tally_result_json(&direct)
            }
        );
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&trace_path);
    }

    #[test]
    fn trace_job_with_missing_file_fails_cleanly() {
        let ckpt = tmp("trace_missing.json");
        let spec = JobSpec::new(
            JobKind::Trace {
                path: "/nonexistent/trace.cppct".into(),
            },
            8,
            1,
        );
        match execute(&spec, &ckpt, 4, 1, None, |_| {}) {
            RunEnd::Failed { error } => assert!(error.contains("cannot open"), "{error}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_checkpoint_fails_cleanly() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        let spec = JobSpec::new(JobKind::Sleep { millis: 0 }, 16, 1);
        match execute(&spec, &path, 4, 1, None, |_| {}) {
            RunEnd::Failed { error } => assert!(error.contains("malformed"), "{error}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn montecarlo_result_is_exact_and_derived() {
        let path = tmp("mc.json");
        let _ = std::fs::remove_file(&path);
        let spec = JobSpec::new(
            JobKind::MonteCarlo {
                rate: 40.0,
                domains: 8,
                tavg: 0.0004,
            },
            200,
            0xCA7,
        );
        let RunEnd::Complete { result } = execute(&spec, &path, 8, 1, None, |_| {}) else {
            panic!("montecarlo job should complete")
        };
        assert_eq!(result.get("n").and_then(Json::as_u64), Some(200));
        let mttf = result
            .get("mttf_hours")
            .and_then(Json::as_f64_bits)
            .unwrap();
        assert!(mttf.is_finite() && mttf > 0.0);
        // Re-running reproduces the document bit for bit.
        let _ = std::fs::remove_file(&path);
        let RunEnd::Complete { result: again } = execute(&spec, &path, 8, 1, None, |_| {}) else {
            panic!("montecarlo rerun should complete")
        };
        assert_eq!(again, result);
        let _ = std::fs::remove_file(&path);
    }
}
