//! Client side of the wire protocol: connect, send one-line requests,
//! read one-line responses (or a `watch` event stream).
//!
//! Used by `cppc-cli submit/status/result/cancel/list/watch/metrics/
//! shutdown` and by the integration tests; anything that speaks
//! newline-delimited JSON (`nc -U`, a script) interoperates.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use cppc_campaign::json::Json;

use crate::job::{JobId, JobSpec, Priority};
use crate::protocol::{is_ok, Request};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport problem (daemon not running, connection dropped).
    Io(io::Error),
    /// The daemon sent something unparseable.
    Protocol(String),
    /// The daemon answered `ok: false`.
    Remote {
        /// The daemon's error message.
        message: String,
        /// Backpressure hint when the submission queue was full.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote {
                message,
                retry_after_ms: Some(ms),
            } => write!(f, "{message} (retry after {ms} ms)"),
            ClientError::Remote { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<Stream>,
}

impl Client {
    /// Connects over the daemon's unix socket.
    ///
    /// # Errors
    ///
    /// Returns the connect error (typically "no such file" or
    /// "connection refused" when the daemon is not running).
    pub fn connect_unix(path: &Path) -> io::Result<Self> {
        Ok(Client {
            reader: BufReader::new(Stream::Unix(UnixStream::connect(path)?)),
        })
    }

    /// Connects over loopback TCP (`127.0.0.1:port`).
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        Ok(Client {
            reader: BufReader::new(Stream::Tcp(TcpStream::connect(addr)?)),
        })
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let out = self.reader.get_mut();
        out.write_all(request.to_json().to_string_compact().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()
    }

    fn read_doc(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )));
        }
        Json::parse(line.trim()).map_err(ClientError::Protocol)
    }

    fn check(doc: Json) -> Result<Json, ClientError> {
        if is_ok(&doc) {
            Ok(doc)
        } else {
            Err(ClientError::Remote {
                message: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified daemon error")
                    .to_string(),
                retry_after_ms: doc.get("retry_after_ms").and_then(Json::as_u64),
            })
        }
    }

    /// One request, one response; `Remote` on `ok: false`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, parse or daemon-side failure.
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        self.send(request)?;
        Self::check(self.read_doc()?)
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    ///
    /// Notably [`ClientError::Remote`] with a `retry_after_ms` hint
    /// when the daemon's queue is full.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: Priority,
        spec: JobSpec,
    ) -> Result<JobId, ClientError> {
        let doc = self.request(&Request::Submit {
            tenant: tenant.to_string(),
            priority,
            spec,
        })?;
        doc.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response missing 'id'".into()))
    }

    /// The job's status document.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or daemon-side failure.
    pub fn status(&mut self, id: JobId) -> Result<Json, ClientError> {
        self.request(&Request::Status(id))
    }

    /// The final result document of a `done` job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the job is not finished (or failed
    /// — the message is the job's diagnostic).
    pub fn result(&mut self, id: JobId) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Result(id))?;
        doc.get("result")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("result response missing 'result'".into()))
    }

    /// Cancels a queued or running job; returns the acknowledgement.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or daemon-side failure.
    pub fn cancel(&mut self, id: JobId) -> Result<Json, ClientError> {
        self.request(&Request::Cancel(id))
    }

    /// Job summaries, optionally one tenant's.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or daemon-side failure.
    pub fn list(&mut self, tenant: Option<&str>) -> Result<Vec<Json>, ClientError> {
        let doc = self.request(&Request::List {
            tenant: tenant.map(ToString::to_string),
        })?;
        match doc.get("jobs").and_then(Json::as_arr) {
            Some(rows) => Ok(rows.to_vec()),
            None => Err(ClientError::Protocol("list response missing 'jobs'".into())),
        }
    }

    /// The daemon's metrics snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or daemon-side failure.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let doc = self.request(&Request::Metrics)?;
        doc.get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("metrics response missing 'metrics'".into()))
    }

    /// Asks the daemon to shut down gracefully (checkpointing running
    /// jobs).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or daemon-side failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Streams a job's progress: `on_event` sees every
    /// `{"event":"progress",...}` line; returns the final
    /// `{"event":"end",...}` document.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or when the daemon rejects
    /// the watch (unknown job).
    pub fn watch(
        &mut self,
        id: JobId,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, ClientError> {
        self.send(&Request::Watch(id))?;
        loop {
            let doc = self.read_doc()?;
            match doc.get("event").and_then(Json::as_str) {
                Some("progress") => on_event(&doc),
                Some("end") => return Ok(doc),
                _ => {
                    Self::check(doc)?;
                    return Err(ClientError::Protocol(
                        "watch stream sent a non-event line".into(),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_for_humans() {
        let e = ClientError::Remote {
            message: "queue full".into(),
            retry_after_ms: Some(250),
        };
        assert_eq!(e.to_string(), "queue full (retry after 250 ms)");
        let io = ClientError::from(io::Error::new(io::ErrorKind::NotFound, "no socket"));
        assert!(io.to_string().contains("no socket"));
        assert!(ClientError::Protocol("junk".into())
            .to_string()
            .contains("junk"));
    }
}
