//! Campaign-as-a-service: a persistent multi-tenant job server over
//! the deterministic campaign engine.
//!
//! `cppc-cli serve` runs the daemon built from this crate: clients
//! submit campaigns (fault injection, Monte Carlo MTTF, benchmarks) as
//! *jobs* over a unix socket — optionally a loopback TCP port —
//! speaking newline-delimited JSON, and the daemon schedules them
//! across tenants under a bounded queue and a worker-thread cap.
//!
//! The pieces, bottom up:
//!
//! - [`job`] — specs, priorities, the lifecycle state machine and the
//!   durable [`job::JobRecord`];
//! - [`store`] — the on-disk job journal and checkpoint layout under
//!   `--data-dir` (atomic writes, restart recovery);
//! - [`scheduler`] — two priority lanes, per-tenant round-robin fair
//!   share, backpressure at the admission bound, a thread governor;
//! - [`runner`] — executes one job on
//!   [`cppc_campaign::run_resumable_interruptible`] with cooperative
//!   interruption;
//! - [`protocol`] — the wire requests/responses;
//! - [`server`] — listeners, connection handlers, the dispatch loop,
//!   graceful shutdown;
//! - [`client`] — the typed client the CLI subcommands use;
//! - [`obs`] — the `serve.*` metric group.
//!
//! The service inherits the engine's determinism end to end: a job
//! interrupted by a daemon restart resumes from its checkpoint and
//! merges to the **bit-identical** final tally that a direct
//! `cppc-cli campaign` run of the same spec produces, at any thread
//! count — the experiment bodies are shared
//! ([`cppc_bench::experiments`]), the per-trial RNG streams are
//! derived from `(seed, trial)` alone, and merges happen in shard
//! order.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod job;
pub mod obs;
pub mod protocol;
pub mod runner;
pub mod scheduler;
pub mod server;
pub mod store;

pub use client::{Client, ClientError};
pub use job::{JobId, JobKind, JobRecord, JobSpec, JobState, Priority};
pub use protocol::Request;
pub use scheduler::{Backpressure, Grant, Scheduler};
pub use server::{serve, ServerConfig};
pub use store::JobStore;
