//! The durable job journal: one JSON file per job under the daemon's
//! `--data-dir`, written atomically on every lifecycle transition.
//!
//! Layout:
//!
//! ```text
//! <data-dir>/jobs/job-<id>.json         the JobRecord journal entry
//! <data-dir>/checkpoints/job-<id>.json  the campaign checkpoint
//! ```
//!
//! The journal is the restart story: a restarted daemon scans `jobs/`,
//! requeues everything non-terminal and resumes running jobs from their
//! campaign checkpoints, so a submitted job survives daemon crashes and
//! graceful shutdowns alike. Records are written with the same
//! temp-file + rename discipline the campaign checkpoints use, so a
//! crash mid-write never corrupts an existing entry.

use std::io;
use std::path::{Path, PathBuf};

use cppc_campaign::json::Json;

use crate::job::{JobId, JobRecord};

/// The on-disk journal under one data directory.
#[derive(Debug)]
pub struct JobStore {
    jobs_dir: PathBuf,
    checkpoints_dir: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) the journal under `data_dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directories cannot be created.
    pub fn open(data_dir: &Path) -> io::Result<Self> {
        let jobs_dir = data_dir.join("jobs");
        let checkpoints_dir = data_dir.join("checkpoints");
        std::fs::create_dir_all(&jobs_dir)?;
        std::fs::create_dir_all(&checkpoints_dir)?;
        Ok(JobStore {
            jobs_dir,
            checkpoints_dir,
        })
    }

    fn record_path(&self, id: JobId) -> PathBuf {
        self.jobs_dir.join(format!("job-{id:06}.json"))
    }

    /// Where job `id`'s campaign checkpoint lives.
    #[must_use]
    pub fn checkpoint_path(&self, id: JobId) -> PathBuf {
        self.checkpoints_dir.join(format!("job-{id:06}.json"))
    }

    /// Writes `record` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the write or rename fails.
    pub fn persist(&self, record: &JobRecord) -> io::Result<()> {
        let path = self.record_path(record.id);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, record.to_json().to_string_compact() + "\n")?;
        std::fs::rename(&tmp, path)
    }

    /// Removes job `id`'s journal entry (submission rollback).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the removal fails (missing is fine).
    pub fn remove_record(&self, id: JobId) -> io::Result<()> {
        match std::fs::remove_file(self.record_path(id)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Removes job `id`'s campaign checkpoint (terminal-state cleanup;
    /// missing is fine).
    pub fn remove_checkpoint(&self, id: JobId) {
        let _ = std::fs::remove_file(self.checkpoint_path(id));
    }

    /// Loads every journal entry, sorted by id. Unreadable or malformed
    /// entries are skipped (reported on stderr) rather than taking the
    /// daemon down — the journal must tolerate a torn disk better than
    /// the jobs it protects.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the journal directory cannot be read.
    pub fn load_all(&self) -> io::Result<Vec<JobRecord>> {
        let mut records = Vec::new();
        for entry in std::fs::read_dir(&self.jobs_dir)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let loaded = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(&text))
                .and_then(|doc| JobRecord::from_json(&doc));
            match loaded {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    crate::obs::JOURNAL_SKIPPED.inc();
                    eprintln!(
                        "serve: skipping unreadable journal entry {}: {e}",
                        path.display()
                    );
                }
            }
        }
        records.sort_by_key(|r| r.id);
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec, JobState, Priority};

    fn record(id: JobId) -> JobRecord {
        JobRecord::new(
            id,
            "tenant".into(),
            Priority::Normal,
            JobSpec::new(JobKind::Sleep { millis: 0 }, 10, 1),
        )
    }

    #[test]
    fn persist_load_roundtrip_sorted() {
        let dir = std::env::temp_dir().join("cppc_serve_store_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        for id in [3u64, 1, 2] {
            store.persist(&record(id)).unwrap();
        }
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        assert_eq!(loaded[0], record(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_updates_overwrite() {
        let dir = std::env::temp_dir().join("cppc_serve_store_update");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        let mut rec = record(7);
        store.persist(&rec).unwrap();
        rec.transition(JobState::Running).unwrap();
        store.persist(&rec).unwrap();
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].state, JobState::Running);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let dir = std::env::temp_dir().join("cppc_serve_store_malformed");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        store.persist(&record(1)).unwrap();
        std::fs::write(dir.join("jobs/job-000002.json"), "{torn write").unwrap();
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.len(), 1, "malformed entry must be skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_and_checkpoint_cleanup() {
        let dir = std::env::temp_dir().join("cppc_serve_store_rollback");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        store.persist(&record(9)).unwrap();
        store.remove_record(9).unwrap();
        store.remove_record(9).unwrap(); // idempotent
        assert!(store.load_all().unwrap().is_empty());
        std::fs::write(store.checkpoint_path(9), "{}").unwrap();
        store.remove_checkpoint(9);
        store.remove_checkpoint(9);
        assert!(!store.checkpoint_path(9).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
