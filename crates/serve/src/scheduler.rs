//! The multi-tenant scheduler: a bounded admission queue with two
//! priority lanes, per-tenant fair share and a worker-thread governor.
//!
//! Admission is bounded: once `queue_cap` jobs are waiting, further
//! submissions are rejected with [`Backpressure`] (the client is told
//! how long to wait before retrying) instead of growing without limit —
//! running jobs are never affected by a full queue.
//!
//! Dispatch order: the `high` lane drains before `normal`; within a
//! lane tenants are served round-robin (one job per tenant per turn) so
//! a tenant that submits a burst cannot starve the others; per tenant,
//! jobs run in submission order. A job is only dispatched when the
//! governor can grant its thread demand without exceeding the cap, so
//! total worker threads stay bounded no matter how many jobs are
//! queued. A waiting wide job may be overtaken by narrower ones until
//! enough threads free up; because demand is clamped to the cap, every
//! job fits eventually.
//!
//! The scheduler is pure bookkeeping (no threads of its own): the
//! server's dispatch loop blocks in [`Scheduler::next`] and runs each
//! grant on worker threads it owns.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::job::{JobId, Priority};
use crate::obs::{QUEUE_DEPTH, RUNNING_THREADS};

/// "Queue full" rejection: retry after the hinted delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// Suggested client retry delay, milliseconds.
    pub retry_after_ms: u64,
}

/// A dispatch decision: run job `id` on `threads` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The job to run.
    pub id: JobId,
    /// Threads granted by the governor (the spec's demand, clamped).
    pub threads: usize,
}

#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    id: JobId,
    threads: usize,
}

/// One priority lane: insertion-ordered per-tenant FIFOs plus a
/// round-robin cursor.
#[derive(Debug, Default)]
struct Lane {
    tenants: Vec<(String, VecDeque<QueuedJob>)>,
    cursor: usize,
}

impl Lane {
    fn push(&mut self, tenant: &str, job: QueuedJob) {
        if let Some((_, q)) = self.tenants.iter_mut().find(|(t, _)| t == tenant) {
            q.push_back(job);
        } else {
            self.tenants
                .push((tenant.to_string(), VecDeque::from([job])));
        }
    }

    /// Takes the next job whose demand fits in `budget`, scanning
    /// tenants round-robin from the cursor; each tenant offers only its
    /// front job (per-tenant FIFO).
    fn take_fitting(&mut self, budget: usize) -> Option<QueuedJob> {
        let n = self.tenants.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            let (_, q) = &mut self.tenants[i];
            if q.front().is_some_and(|j| j.threads <= budget) {
                let job = q.pop_front().expect("front checked");
                self.cursor = (i + 1) % n.max(1);
                return Some(job);
            }
        }
        None
    }

    fn take_by_id(&mut self, id: JobId) -> bool {
        for (_, q) in &mut self.tenants {
            if let Some(pos) = q.iter().position(|j| j.id == id) {
                q.remove(pos);
                return true;
            }
        }
        false
    }
}

#[derive(Debug, Default)]
struct State {
    lanes: [Lane; 2], // [high, normal]
    queued: usize,
    running_threads: usize,
    shutdown: bool,
}

/// The scheduler shared between the accept handlers (submit/cancel) and
/// the dispatch loop (next/release).
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    wake: Condvar,
    queue_cap: usize,
    max_threads: usize,
}

impl Scheduler {
    /// A scheduler admitting at most `queue_cap` queued jobs and
    /// granting at most `max_threads` total worker threads.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    #[must_use]
    pub fn new(queue_cap: usize, max_threads: usize) -> Self {
        assert!(queue_cap > 0, "queue capacity must be positive");
        assert!(max_threads > 0, "thread cap must be positive");
        Scheduler {
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
            queue_cap,
            max_threads,
        }
    }

    /// The thread cap (used to clamp spec demands for display).
    #[must_use]
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Resolves a spec's thread demand: `0` means every CPU on this
    /// host (`available_parallelism`), then the governor's cap clamps.
    fn resolve_demand(&self, threads: usize) -> usize {
        let wanted = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            threads
        };
        wanted.clamp(1, self.max_threads)
    }

    /// Admits a job to its lane, or rejects with [`Backpressure`] when
    /// the queue is at capacity. `threads` is the spec's demand; `0`
    /// resolves to every CPU, then it is clamped into
    /// `1..=max_threads` here so every admitted job can eventually be
    /// granted.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] when `queue_cap` jobs are already
    /// waiting; the hint grows with the backlog.
    pub fn submit(
        &self,
        id: JobId,
        tenant: &str,
        priority: Priority,
        threads: usize,
    ) -> Result<(), Backpressure> {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.queued >= self.queue_cap {
            crate::obs::JOBS_REJECTED_BACKPRESSURE.inc();
            return Err(Backpressure {
                retry_after_ms: 100 * (st.queued as u64),
            });
        }
        let job = QueuedJob {
            id,
            threads: self.resolve_demand(threads),
        };
        st.lanes[lane_index(priority)].push(tenant, job);
        st.queued += 1;
        QUEUE_DEPTH.set(st.queued as i64);
        drop(st);
        self.wake.notify_all();
        Ok(())
    }

    /// Re-admits a journalled job during daemon-restart recovery,
    /// bypassing the admission cap: the job was accepted by a previous
    /// daemon run and must not be dropped because this run's queue
    /// bound is smaller than the backlog it inherited.
    pub fn restore(&self, id: JobId, tenant: &str, priority: Priority, threads: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        let job = QueuedJob {
            id,
            threads: self.resolve_demand(threads),
        };
        st.lanes[lane_index(priority)].push(tenant, job);
        st.queued += 1;
        QUEUE_DEPTH.set(st.queued as i64);
        drop(st);
        self.wake.notify_all();
    }

    /// Blocks until a job can be dispatched within the thread budget,
    /// then grants it (charging the governor). Returns `None` once
    /// [`Scheduler::shutdown`] has been called.
    pub fn next(&self) -> Option<Grant> {
        let mut st = self.state.lock().expect("scheduler lock");
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(grant) = Self::take(&mut st, self.max_threads) {
                return Some(grant);
            }
            st = self.wake.wait(st).expect("scheduler lock");
        }
    }

    /// Like [`Scheduler::next`] but non-blocking: `None` means nothing
    /// dispatchable right now (or shutdown).
    pub fn try_next(&self) -> Option<Grant> {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.shutdown {
            return None;
        }
        Self::take(&mut st, self.max_threads)
    }

    fn take(st: &mut State, max_threads: usize) -> Option<Grant> {
        let budget = max_threads - st.running_threads;
        let job = st.lanes.iter_mut().find_map(|l| l.take_fitting(budget))?;
        st.queued -= 1;
        st.running_threads += job.threads;
        QUEUE_DEPTH.set(st.queued as i64);
        RUNNING_THREADS.set(st.running_threads as i64);
        Some(Grant {
            id: job.id,
            threads: job.threads,
        })
    }

    /// Returns a grant's threads to the governor when its job ends.
    pub fn release(&self, threads: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        st.running_threads = st.running_threads.saturating_sub(threads);
        RUNNING_THREADS.set(st.running_threads as i64);
        drop(st);
        self.wake.notify_all();
    }

    /// Removes a still-queued job (cancel before dispatch). Returns
    /// whether it was found in a lane.
    pub fn remove(&self, id: JobId) -> bool {
        let mut st = self.state.lock().expect("scheduler lock");
        let found = st.lanes.iter_mut().any(|l| l.take_by_id(id));
        if found {
            st.queued -= 1;
            QUEUE_DEPTH.set(st.queued as i64);
        }
        drop(st);
        self.wake.notify_all();
        found
    }

    /// Jobs currently waiting across both lanes.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("scheduler lock").queued
    }

    /// Wakes every [`Scheduler::next`] waiter with `None`; queued jobs
    /// stay journalled for the next daemon run.
    pub fn shutdown(&self) {
        self.state.lock().expect("scheduler lock").shutdown = true;
        self.wake.notify_all();
    }
}

fn lane_index(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Normal => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(sched: &Scheduler) -> Vec<JobId> {
        std::iter::from_fn(|| sched.try_next().map(|g| g.id)).collect()
    }

    #[test]
    fn tenants_share_round_robin() {
        let s = Scheduler::new(16, 64);
        for id in 1..=3 {
            s.submit(id, "alice", Priority::Normal, 1).unwrap();
        }
        s.submit(4, "bob", Priority::Normal, 1).unwrap();
        // Alice's burst must not starve Bob: he runs second, not last.
        assert_eq!(ids(&s), [1, 4, 2, 3]);
    }

    #[test]
    fn high_lane_drains_first() {
        let s = Scheduler::new(16, 64);
        s.submit(1, "alice", Priority::Normal, 1).unwrap();
        s.submit(2, "bob", Priority::High, 1).unwrap();
        s.submit(3, "alice", Priority::High, 1).unwrap();
        assert_eq!(ids(&s), [2, 3, 1]);
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let s = Scheduler::new(2, 4);
        s.submit(1, "a", Priority::Normal, 1).unwrap();
        s.submit(2, "a", Priority::Normal, 1).unwrap();
        let err = s.submit(3, "a", Priority::Normal, 1).unwrap_err();
        assert!(err.retry_after_ms > 0);
        // Draining one queued job frees a slot.
        assert!(s.try_next().is_some());
        s.submit(3, "a", Priority::Normal, 1).unwrap();
        assert_eq!(s.depth(), 2);
    }

    #[test]
    fn governor_caps_total_threads() {
        let s = Scheduler::new(16, 4);
        s.submit(1, "a", Priority::Normal, 3).unwrap();
        s.submit(2, "b", Priority::Normal, 3).unwrap();
        s.submit(3, "c", Priority::Normal, 1).unwrap();
        let g1 = s.try_next().unwrap();
        assert_eq!((g1.id, g1.threads), (1, 3));
        // Job 2 (3 threads) does not fit in the remaining budget of 1,
        // but job 3 (1 thread) does — narrow jobs may overtake.
        let g3 = s.try_next().unwrap();
        assert_eq!((g3.id, g3.threads), (3, 1));
        assert!(s.try_next().is_none());
        s.release(g3.threads);
        s.release(g1.threads);
        assert_eq!(s.try_next().unwrap().id, 2);
    }

    #[test]
    fn demand_is_clamped_to_the_cap() {
        let s = Scheduler::new(16, 2);
        s.submit(1, "a", Priority::Normal, 64).unwrap();
        assert_eq!(s.try_next().unwrap().threads, 2);
        let s0 = Scheduler::new(16, 2);
        s0.submit(1, "a", Priority::Normal, 0).unwrap();
        assert_eq!(s0.try_next().unwrap().threads, 1);
    }

    #[test]
    fn remove_cancels_queued_jobs() {
        let s = Scheduler::new(16, 4);
        s.submit(1, "a", Priority::Normal, 1).unwrap();
        s.submit(2, "a", Priority::Normal, 1).unwrap();
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(ids(&s), [2]);
    }

    #[test]
    fn shutdown_wakes_blocked_next() {
        let s = std::sync::Arc::new(Scheduler::new(4, 4));
        let s2 = std::sync::Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.next());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.shutdown();
        assert_eq!(waiter.join().unwrap(), None);
        assert!(s.try_next().is_none());
    }
}
