//! The `serve.*` metric group: job lifecycle counts, queue and thread
//! levels, request traffic and per-job wall time.

cppc_obs::metrics! {
    group SERVE_METRICS: "serve", "Campaign job server: submissions, scheduling levels and request traffic.";
    counter JOBS_SUBMITTED: "serve.jobs_submitted", "jobs", "Jobs admitted to the queue (journal entry written).";
    counter JOBS_REJECTED_BACKPRESSURE: "serve.jobs_rejected_backpressure", "jobs", "Submissions rejected because the bounded queue was full (client told to retry).";
    counter JOBS_DONE: "serve.jobs_done", "jobs", "Jobs that ran to completion with a final tally.";
    counter JOBS_FAILED: "serve.jobs_failed", "jobs", "Jobs that ended with a diagnostic error.";
    counter JOBS_CANCELLED: "serve.jobs_cancelled", "jobs", "Jobs cancelled by a client (queued or mid-run).";
    counter JOBS_REQUEUED: "serve.jobs_requeued", "jobs", "Journalled jobs requeued by a restarted daemon (checkpointed work resumes, not reruns).";
    counter JOURNAL_SKIPPED: "serve.journal_skipped", "entries", "Unreadable journal entries skipped while loading the data dir.";
    counter REQUESTS: "serve.requests", "requests", "Wire requests handled (all operations).";
    counter CONNECTIONS: "serve.connections", "connections", "Client connections accepted on the unix socket or TCP listener.";
    counter WATCH_STREAMS: "serve.watch_streams", "streams", "Watch subscriptions served (each streams live progress until the job ends).";
    gauge QUEUE_DEPTH: "serve.queue_depth", "jobs", "Jobs currently queued across both priority lanes.";
    gauge RUNNING_THREADS: "serve.running_threads", "threads", "Worker threads currently granted to running jobs by the governor.";
    timer JOB_LATENCY: "serve.job.ns", "ns", "Wall time of each job execution (dispatch to terminal state, excluding queue wait).";
}

/// Registers the serve metric group (idempotent).
pub fn register_metrics() {
    SERVE_METRICS.register();
}
