//! The job model: specs, priorities, the lifecycle state machine and
//! the durable [`JobRecord`] the journal persists.
//!
//! A *job* is one campaign submitted over the wire: what to run (the
//! [`JobSpec`]), who submitted it (tenant), how urgently ([`Priority`])
//! and where it is in its life ([`JobState`]). Everything round-trips
//! through the workspace's hand-rolled JSON so the journal and the wire
//! protocol share one serialization with exact 64-bit integers.

use cppc_bench::experiments::{parse_config, parse_fault, parse_scheme};
use cppc_campaign::json::Json;
use cppc_campaign::{CampaignConfig, DEFAULT_SHARD_SIZE};

/// Identifies one job for its whole life (monotonic per data dir).
pub type JobId = u64;

/// What kind of campaign a job runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Fault-injection campaign on a small L1 CPPC
    /// ([`cppc_bench::experiments::inject_experiment`]).
    Inject {
        /// CPPC configuration name (`basic`, `paper`, `two-pairs`,
        /// `eight-pairs`).
        config: String,
        /// Fault model name (`single`, `2xvert`, `8xhoriz`, `4x4`,
        /// `8x8`).
        fault: String,
    },
    /// Scheme-zoo fault-injection campaign behind the
    /// `ProtectionScheme` trait
    /// ([`cppc_bench::experiments::scheme_experiment`]).
    Scheme {
        /// Protection-scheme selector (`cppc`, `parity1d`,
        /// `secded-interleaved`, `parity2d`, `silent-write-ecc`,
        /// `harp-odecc`).
        scheme: String,
        /// CPPC configuration name (used by the `cppc` scheme only).
        config: String,
        /// Fault model name (`single`, `2xvert`, `8xhoriz`, `4x4`,
        /// `8x8`).
        fault: String,
    },
    /// Monte Carlo double-fault MTTF validation
    /// ([`cppc_reliability::montecarlo`]).
    MonteCarlo {
        /// Faults per hour over dirty bits.
        rate: f64,
        /// Protection domains.
        domains: u32,
        /// Dirty window, hours.
        tavg: f64,
    },
    /// The warm-pool `mbe_coverage` campaign, executed through the
    /// cross-trial batched engine ([`cppc_bench::mbe::MbeBatchExec`])
    /// at the spec's `batch` size.
    Mbe,
    /// Synthetic duration-controllable campaign
    /// ([`cppc_bench::experiments::sleep_experiment`]) — for service
    /// tests and load drills.
    Sleep {
        /// Sleep per trial, milliseconds.
        millis: u64,
    },
    /// Trace-driven campaign
    /// ([`cppc_bench::experiments::trace_experiment`]): every trial
    /// replays a recorded trace through the batched hierarchy fast
    /// path and folds the run digest into its outcome.
    Trace {
        /// Path to the trace file (binary `docs/TRACES.md` format, or
        /// text v1), resolved on the executing host at dispatch time.
        path: String,
    },
    /// Design-space sweep ([`cppc_explore::run_sweep`]): the tier's
    /// grid with the spec's `seed`/`trials` as the per-config campaign
    /// parameters. The result document is the `cppc-explore/1` sweep
    /// doc (points + Pareto ranks); per-config checkpoints live next
    /// to the job's checkpoint path.
    Explore {
        /// `true` runs the 28-config quick tier, `false` the full
        /// 432-config grid.
        quick: bool,
    },
}

impl JobKind {
    /// The kind's wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Inject { .. } => "inject",
            JobKind::Scheme { .. } => "scheme",
            JobKind::MonteCarlo { .. } => "montecarlo",
            JobKind::Mbe => "mbe",
            JobKind::Sleep { .. } => "sleep",
            JobKind::Trace { .. } => "trace",
            JobKind::Explore { .. } => "explore",
        }
    }
}

/// Everything needed to run a job's campaign deterministically.
///
/// `seed`, `trials` and `shard_size` form the campaign identity
/// (checkpoint compatibility); `threads` is a scheduling hint the
/// resource governor may clamp without affecting the result — the
/// engine's tallies are bit-identical at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Campaign size.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Requested worker threads. `0` resolves to every CPU on the
    /// executing host (`available_parallelism`) before the governor
    /// clamps it.
    pub threads: usize,
    /// Trials per shard (checkpoint granularity; part of the identity).
    pub shard_size: u64,
    /// Trials per vectorized syndrome batch (`mbe` kind only; other
    /// kinds ignore it). Not part of the campaign identity: tallies and
    /// checkpoints are bit-identical at any batch size.
    pub batch: usize,
}

impl JobSpec {
    /// A spec with the engine's default shard size and one thread.
    #[must_use]
    pub fn new(kind: JobKind, trials: u64, seed: u64) -> Self {
        JobSpec {
            kind,
            trials,
            seed,
            threads: 1,
            shard_size: DEFAULT_SHARD_SIZE,
            batch: 1,
        }
    }

    /// Checks the spec is runnable: positive sizes and, for `inject`,
    /// known config/fault names. Submissions with a bad spec are
    /// rejected at the socket instead of failing later in a worker.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the defect.
    pub fn validate(&self) -> Result<(), String> {
        if self.trials == 0 {
            return Err("trials must be positive".into());
        }
        if self.shard_size == 0 {
            return Err("shard_size must be positive".into());
        }
        match &self.kind {
            JobKind::Inject { config, fault } => {
                parse_config(config)?;
                parse_fault(fault)?;
            }
            JobKind::Scheme {
                scheme,
                config,
                fault,
            } => {
                parse_scheme(scheme)?;
                parse_config(config)?;
                parse_fault(fault)?;
            }
            JobKind::MonteCarlo { rate, tavg, .. } => {
                if !(rate.is_finite() && *rate > 0.0) {
                    return Err("montecarlo rate must be positive".into());
                }
                if !(tavg.is_finite() && *tavg > 0.0) {
                    return Err("montecarlo tavg must be positive".into());
                }
                if u32::try_from(self.trials).is_err() {
                    return Err("too many trials for montecarlo".into());
                }
            }
            JobKind::Trace { path } => {
                // Existence is checked on the executing host at
                // dispatch; an empty path can never be right.
                if path.is_empty() {
                    return Err("trace path must not be empty".into());
                }
            }
            JobKind::Explore { .. } => {
                // The grid axes are fixed by the tier; per-config
                // campaigns only need positive trials, checked above.
            }
            JobKind::Mbe | JobKind::Sleep { .. } => {}
        }
        Ok(())
    }

    /// The campaign configuration this spec resolves to at `threads`
    /// workers. Seed, trials and shard size come from the spec alone,
    /// so a job resumed in a different process (or run directly via
    /// `cppc-cli campaign`) targets the same campaign identity.
    ///
    /// `threads` is passed through unresolved: the engine maps `0` to
    /// every CPU via `available_parallelism` at run time.
    #[must_use]
    pub fn campaign_config(&self, threads: usize) -> CampaignConfig {
        CampaignConfig::new(self.seed, self.trials)
            .shard_size(self.shard_size)
            .threads(threads)
    }

    /// Serializes the spec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.kind.name().into()))];
        match &self.kind {
            JobKind::Inject { config, fault } => {
                pairs.push(("config".into(), Json::Str(config.clone())));
                pairs.push(("fault".into(), Json::Str(fault.clone())));
            }
            JobKind::Scheme {
                scheme,
                config,
                fault,
            } => {
                pairs.push(("scheme".into(), Json::Str(scheme.clone())));
                pairs.push(("config".into(), Json::Str(config.clone())));
                pairs.push(("fault".into(), Json::Str(fault.clone())));
            }
            JobKind::MonteCarlo {
                rate,
                domains,
                tavg,
            } => {
                pairs.push(("rate".into(), Json::Num(*rate)));
                pairs.push(("domains".into(), Json::UInt(u64::from(*domains))));
                pairs.push(("tavg".into(), Json::Num(*tavg)));
            }
            JobKind::Trace { path } => {
                pairs.push(("path".into(), Json::Str(path.clone())));
            }
            JobKind::Explore { quick } => {
                pairs.push(("quick".into(), Json::Bool(*quick)));
            }
            JobKind::Mbe | JobKind::Sleep { .. } => {}
        }
        if let JobKind::Sleep { millis } = self.kind {
            pairs.push(("millis".into(), Json::UInt(millis)));
        }
        pairs.push(("trials".into(), Json::UInt(self.trials)));
        pairs.push(("seed".into(), Json::UInt(self.seed)));
        pairs.push(("threads".into(), Json::UInt(self.threads as u64)));
        pairs.push(("shard_size".into(), Json::UInt(self.shard_size)));
        pairs.push(("batch".into(), Json::UInt(self.batch as u64)));
        Json::Obj(pairs)
    }

    /// Restores a spec written by [`JobSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let kind_name = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("spec missing 'kind'")?;
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(ToString::to_string)
                .ok_or_else(|| format!("spec missing '{name}'"))
        };
        let u64_field = |name: &str, default: u64| {
            v.get(name).map_or(Ok(default), |j| {
                j.as_u64().ok_or_else(|| format!("bad '{name}' in spec"))
            })
        };
        let f64_field = |name: &str| {
            v.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("spec missing '{name}'"))
        };
        let kind = match kind_name {
            "inject" => JobKind::Inject {
                config: str_field("config")?,
                fault: str_field("fault")?,
            },
            "scheme" => JobKind::Scheme {
                scheme: str_field("scheme")?,
                config: str_field("config")?,
                fault: str_field("fault")?,
            },
            "montecarlo" => JobKind::MonteCarlo {
                rate: f64_field("rate")?,
                domains: u32::try_from(u64_field("domains", 8)?)
                    .map_err(|_| "bad 'domains' in spec".to_string())?,
                tavg: f64_field("tavg")?,
            },
            "mbe" => JobKind::Mbe,
            "sleep" => JobKind::Sleep {
                millis: u64_field("millis", 0)?,
            },
            "trace" => JobKind::Trace {
                path: str_field("path")?,
            },
            "explore" => JobKind::Explore {
                quick: match v.get("quick") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("bad 'quick' in spec".to_string()),
                },
            },
            other => return Err(format!("unknown job kind '{other}'")),
        };
        let threads = usize::try_from(u64_field("threads", 1)?)
            .map_err(|_| "bad 'threads' in spec".to_string())?;
        // Journals written before batching existed carry no 'batch'
        // field; those jobs ran (and resume) on the per-trial path.
        let batch = usize::try_from(u64_field("batch", 1)?)
            .map_err(|_| "bad 'batch' in spec".to_string())?;
        Ok(JobSpec {
            kind,
            trials: u64_field("trials", 0)?,
            seed: u64_field("seed", 0)?,
            threads,
            shard_size: u64_field("shard_size", DEFAULT_SHARD_SIZE)?,
            batch,
        })
    }
}

/// Scheduling lane: `high` drains before `normal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Served before every normal job.
    High,
    /// The default lane.
    Normal,
}

impl Priority {
    /// Wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown priority.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            other => Err(format!("unknown priority '{other}' (use high|normal)")),
        }
    }
}

/// Where a job is in its life.
///
/// ```text
/// Queued ──▶ Running ──▶ Done
///    │          │  ├───▶ Failed
///    │          │  └───▶ Cancelled
///    │          └──▶ Queued     (requeued after a daemon restart)
///    └─────────────▶ Cancelled  (cancelled before dispatch)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for the scheduler.
    Queued,
    /// Executing on worker threads (also the journal state of a job
    /// suspended by a graceful shutdown — it resumes on restart).
    Running,
    /// Completed; the result tally is final.
    Done,
    /// A shard panicked or the checkpoint was unusable.
    Failed,
    /// Cancelled by a client.
    Cancelled,
}

impl JobState {
    /// Wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown state.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(format!("unknown job state '{other}'")),
        }
    }

    /// Whether the state is final.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Whether the lifecycle permits moving to `to`.
    #[must_use]
    pub fn can_transition(self, to: JobState) -> bool {
        match self {
            JobState::Queued => matches!(to, JobState::Running | JobState::Cancelled),
            JobState::Running => matches!(
                to,
                JobState::Done | JobState::Failed | JobState::Cancelled | JobState::Queued
            ),
            _ => false,
        }
    }
}

/// The durable description of one job — exactly what the journal holds.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Submitting tenant (fair-share key).
    pub tenant: String,
    /// Scheduling lane.
    pub priority: Priority,
    /// What to run.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Final result (kind-specific JSON) once `Done`.
    pub result: Option<Json>,
    /// Failure diagnostic once `Failed`.
    pub error: Option<String>,
}

impl JobRecord {
    /// A fresh queued record.
    #[must_use]
    pub fn new(id: JobId, tenant: String, priority: Priority, spec: JobSpec) -> Self {
        JobRecord {
            id,
            tenant,
            priority,
            spec,
            state: JobState::Queued,
            result: None,
            error: None,
        }
    }

    /// Applies a lifecycle transition, rejecting illegal ones.
    ///
    /// # Errors
    ///
    /// Returns a message naming the rejected transition.
    pub fn transition(&mut self, to: JobState) -> Result<(), String> {
        if !self.state.can_transition(to) {
            return Err(format!(
                "job {} cannot move {} -> {}",
                self.id,
                self.state.as_str(),
                to.as_str()
            ));
        }
        self.state = to;
        Ok(())
    }

    /// Serializes the record for the journal and the wire.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::UInt(self.id)),
            ("tenant".into(), Json::Str(self.tenant.clone())),
            ("priority".into(), Json::Str(self.priority.as_str().into())),
            ("spec".into(), self.spec.to_json()),
            ("state".into(), Json::Str(self.state.as_str().into())),
            ("result".into(), self.result.clone().unwrap_or(Json::Null)),
            (
                "error".into(),
                self.error.clone().map_or(Json::Null, Json::Str),
            ),
        ])
    }

    /// Restores a record written by [`JobRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("record missing 'id'")?;
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or("record missing 'tenant'")?
            .to_string();
        let priority = Priority::parse(
            v.get("priority")
                .and_then(Json::as_str)
                .ok_or("record missing 'priority'")?,
        )?;
        let spec = JobSpec::from_json(v.get("spec").ok_or("record missing 'spec'")?)?;
        let state = JobState::parse(
            v.get("state")
                .and_then(Json::as_str)
                .ok_or("record missing 'state'")?,
        )?;
        let result = match v.get("result") {
            None | Some(Json::Null) => None,
            Some(r) => Some(r.clone()),
        };
        let error = match v.get("error") {
            None | Some(Json::Null) => None,
            Some(e) => Some(e.as_str().ok_or("bad 'error' in record")?.to_string()),
        };
        Ok(JobRecord {
            id,
            tenant,
            priority,
            spec,
            state,
            result,
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec::new(
                JobKind::Inject {
                    config: "paper".into(),
                    fault: "4x4".into(),
                },
                400,
                0xC11,
            ),
            JobSpec {
                threads: 4,
                shard_size: 16,
                ..JobSpec::new(
                    JobKind::MonteCarlo {
                        rate: 40.0,
                        domains: 8,
                        tavg: 0.0004,
                    },
                    3000,
                    0xCA7,
                )
            },
            JobSpec {
                batch: 32,
                ..JobSpec::new(JobKind::Mbe, 2000, 0xC0DE)
            },
            JobSpec::new(JobKind::Sleep { millis: 3 }, 100, 7),
            JobSpec::new(
                JobKind::Trace {
                    path: "/tmp/t.cppct".into(),
                },
                50,
                0x7ACE,
            ),
            JobSpec::new(
                JobKind::Scheme {
                    scheme: "secded-interleaved".into(),
                    config: "paper".into(),
                    fault: "8x8".into(),
                },
                400,
                0xC11,
            ),
            JobSpec::new(JobKind::Explore { quick: true }, 8, 0xE87A),
            JobSpec::new(JobKind::Explore { quick: false }, 48, 0xE87A),
        ]
    }

    #[test]
    fn spec_json_roundtrip() {
        for spec in specs() {
            let text = spec.to_json().to_string_compact();
            let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn spec_validation() {
        for spec in specs() {
            assert_eq!(spec.validate(), Ok(()));
        }
        let mut bad = specs().remove(0);
        bad.trials = 0;
        assert!(bad.validate().is_err());
        let bad_fault = JobSpec::new(
            JobKind::Inject {
                config: "paper".into(),
                fault: "9x9".into(),
            },
            10,
            1,
        );
        assert!(bad_fault.validate().unwrap_err().contains("9x9"));
        let bad_scheme = JobSpec::new(
            JobKind::Scheme {
                scheme: "hamming".into(),
                config: "paper".into(),
                fault: "4x4".into(),
            },
            10,
            1,
        );
        assert!(bad_scheme.validate().unwrap_err().contains("hamming"));
        let bad_rate = JobSpec::new(
            JobKind::MonteCarlo {
                rate: -1.0,
                domains: 4,
                tavg: 0.1,
            },
            10,
            1,
        );
        assert!(bad_rate.validate().is_err());
        let bad_trace = JobSpec::new(
            JobKind::Trace {
                path: String::new(),
            },
            10,
            1,
        );
        assert!(bad_trace.validate().unwrap_err().contains("path"));
    }

    #[test]
    fn record_roundtrip_with_result_and_error() {
        let mut rec = JobRecord::new(42, "alice".into(), Priority::High, specs().remove(2));
        rec.transition(JobState::Running).unwrap();
        rec.result = Some(Json::parse(r#"{"masked":1,"corrected":2,"due":0,"sdc":0}"#).unwrap());
        rec.error = Some("shard 3 panicked".into());
        let text = rec.to_json().to_string_compact();
        let back = JobRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn state_machine_enforced() {
        let mut rec = JobRecord::new(1, "t".into(), Priority::Normal, specs().remove(3));
        assert!(rec.transition(JobState::Done).is_err(), "queued -> done");
        rec.transition(JobState::Running).unwrap();
        // Restart requeue is legal; terminal states are sinks.
        rec.transition(JobState::Queued).unwrap();
        rec.transition(JobState::Running).unwrap();
        rec.transition(JobState::Done).unwrap();
        let err = rec.transition(JobState::Running).unwrap_err();
        assert!(err.contains("done"), "{err}");
        for s in [JobState::Done, JobState::Failed, JobState::Cancelled] {
            assert!(s.is_terminal());
        }
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn campaign_config_matches_identity() {
        let spec = specs().remove(2);
        let cfg = spec.campaign_config(8);
        assert_eq!(cfg.seed, spec.seed);
        assert_eq!(cfg.trials, spec.trials);
        assert_eq!(cfg.shard_size, spec.shard_size);
        assert_eq!(cfg.threads, 8);
        // Thread count is NOT part of the identity: clamping is safe.
        assert_eq!(spec.campaign_config(1).identity(), cfg.identity());
    }

    #[test]
    fn names_roundtrip() {
        for p in [Priority::High, Priority::Normal] {
            assert_eq!(Priority::parse(p.as_str()), Ok(p));
        }
        assert!(Priority::parse("urgent").is_err());
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Ok(s));
        }
        assert!(JobState::parse("paused").is_err());
    }
}
