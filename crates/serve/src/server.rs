//! The daemon: listeners, connection handlers, the dispatch loop and
//! the restart recovery path.
//!
//! One [`serve`] call owns everything: it opens the journal, requeues
//! surviving jobs, binds a unix socket (plus an optional loopback TCP
//! listener), and blocks until a `shutdown` request arrives. Each
//! accepted connection gets a handler thread speaking the
//! [`crate::protocol`] line protocol; a single dispatch loop pulls
//! grants from the [`Scheduler`] and runs each job on its own worker
//! thread via [`crate::runner`].
//!
//! Graceful shutdown raises every running job's interrupt flag: the
//! engine drains in-flight shards, writes a final checkpoint, and the
//! job's journal entry stays `running` — the next daemon run requeues
//! it and the resumed campaign merges to the bit-identical tally an
//! uninterrupted run produces.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cppc_campaign::json::Json;
use cppc_campaign::metrics::Progress;

use crate::job::{JobId, JobRecord, JobState, Priority};
use crate::obs;
use crate::protocol::{error_response, ok_response, Request};
use crate::runner::RunEnd;
use crate::scheduler::{Grant, Scheduler};
use crate::store::JobStore;

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);
/// Cadence of `watch` progress lines.
const WATCH_TICK: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Journal + checkpoint root.
    pub data_dir: PathBuf,
    /// Unix socket to listen on (created, removed on exit).
    pub socket_path: PathBuf,
    /// Optional extra loopback TCP listener, e.g. `127.0.0.1:7070`.
    pub tcp_addr: Option<String>,
    /// Admission bound: queued jobs beyond this are rejected with a
    /// retry hint.
    pub queue_cap: usize,
    /// Governor bound on total worker threads across running jobs.
    pub max_threads: usize,
    /// Checkpoint cadence for every job (shards between writes).
    pub checkpoint_every_shards: u64,
}

impl ServerConfig {
    /// Defaults: queue of 64, threads = hardware parallelism,
    /// checkpoint every 4 shards, no TCP.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>, socket_path: impl Into<PathBuf>) -> Self {
        ServerConfig {
            data_dir: data_dir.into(),
            socket_path: socket_path.into(),
            tcp_addr: None,
            queue_cap: 64,
            max_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            checkpoint_every_shards: 4,
        }
    }
}

/// Per-job live state alongside the durable record.
struct JobEntry {
    record: JobRecord,
    /// Raised to stop the engine cooperatively (cancel or shutdown).
    interrupt: Arc<AtomicBool>,
    /// Distinguishes a client cancel (terminal) from a shutdown
    /// suspension (job stays `running` in the journal and resumes).
    cancel_requested: Arc<AtomicBool>,
    /// Latest engine progress snapshot, for `status` and `watch`.
    progress: Arc<Mutex<Option<Progress>>>,
}

impl JobEntry {
    fn new(record: JobRecord) -> Self {
        JobEntry {
            record,
            interrupt: Arc::new(AtomicBool::new(false)),
            cancel_requested: Arc::new(AtomicBool::new(false)),
            progress: Arc::new(Mutex::new(None)),
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    store: JobStore,
    sched: Scheduler,
    jobs: Mutex<HashMap<JobId, JobEntry>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Idempotent graceful-shutdown trigger: stop admitting, wake the
    /// dispatch loop, and suspend running jobs via their interrupt
    /// flags (without marking them cancelled).
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.sched.shutdown();
        let jobs = self.jobs.lock().expect("jobs lock");
        for entry in jobs.values() {
            if entry.record.state == JobState::Running {
                entry.interrupt.store(true, Ordering::SeqCst);
            }
        }
    }

    fn persist_or_log(&self, record: &JobRecord) {
        if let Err(e) = self.store.persist(record) {
            eprintln!("serve: failed to journal job {}: {e}", record.id);
        }
    }
}

/// Runs the daemon until a `shutdown` request; returns once every
/// worker has checkpointed and exited.
///
/// # Errors
///
/// Returns the I/O error if the data dir or a listener cannot be set
/// up. Per-connection and per-job I/O problems are reported on stderr
/// and do not take the daemon down.
pub fn serve(cfg: ServerConfig) -> io::Result<()> {
    obs::register_metrics();
    let store = JobStore::open(&cfg.data_dir)?;
    // A previous unclean exit may have left the socket file behind.
    let _ = std::fs::remove_file(&cfg.socket_path);
    let unix = UnixListener::bind(&cfg.socket_path)?;
    unix.set_nonblocking(true)?;
    let tcp = match &cfg.tcp_addr {
        None => None,
        Some(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
    };
    let sched = Scheduler::new(cfg.queue_cap, cfg.max_threads);
    let socket_path = cfg.socket_path.clone();
    let shared = Arc::new(Shared {
        cfg,
        store,
        sched,
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
    });
    recover(&shared)?;

    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || dispatch_loop(&shared))
    };
    let tcp_thread = tcp.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, || listener.accept().map(|(s, _)| s)))
    });
    eprintln!(
        "cppc-serve: listening on {} (queue {} / {} threads)",
        socket_path.display(),
        shared.cfg.queue_cap,
        shared.cfg.max_threads
    );
    accept_loop(&shared, || unix.accept().map(|(s, _)| s));

    dispatcher.join().expect("dispatch loop panicked");
    if let Some(t) = tcp_thread {
        t.join().expect("tcp accept loop panicked");
    }
    let _ = std::fs::remove_file(&socket_path);
    eprintln!("cppc-serve: shut down cleanly");
    Ok(())
}

/// Loads the journal: terminal jobs become queryable history, queued
/// and (previously) running jobs are requeued — running ones resume
/// from their checkpoints.
fn recover(shared: &Arc<Shared>) -> io::Result<()> {
    let records = shared.store.load_all()?;
    let mut jobs = shared.jobs.lock().expect("jobs lock");
    for mut record in records {
        let id = record.id;
        if id >= shared.next_id.load(Ordering::SeqCst) {
            shared.next_id.store(id + 1, Ordering::SeqCst);
        }
        match record.state {
            JobState::Done | JobState::Failed | JobState::Cancelled => {}
            JobState::Queued => {
                shared
                    .sched
                    .restore(id, &record.tenant, record.priority, record.spec.threads);
            }
            JobState::Running => {
                obs::JOBS_REQUEUED.inc();
                record
                    .transition(JobState::Queued)
                    .expect("running->queued");
                shared.persist_or_log(&record);
                shared
                    .sched
                    .restore(id, &record.tenant, record.priority, record.spec.threads);
            }
        }
        jobs.insert(id, JobEntry::new(record));
    }
    if !jobs.is_empty() {
        eprintln!(
            "cppc-serve: recovered {} journalled job(s), {} requeued",
            jobs.len(),
            shared.sched.depth()
        );
    }
    Ok(())
}

/// Pulls grants until shutdown, running each job on its own worker
/// thread; joins all workers before returning so `serve` only exits
/// once every final checkpoint is on disk.
fn dispatch_loop(shared: &Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while let Some(grant) = shared.sched.next() {
        let shared = Arc::clone(shared);
        workers.push(std::thread::spawn(move || run_job(&shared, grant)));
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Executes one granted job end to end and journals its outcome.
fn run_job(shared: &Arc<Shared>, grant: Grant) {
    let (spec, interrupt, cancel_requested, progress) = {
        let mut jobs = shared.jobs.lock().expect("jobs lock");
        let Some(entry) = jobs.get_mut(&grant.id) else {
            shared.sched.release(grant.threads);
            return;
        };
        if entry.record.transition(JobState::Running).is_err() {
            // Cancelled between grant and dispatch.
            shared.sched.release(grant.threads);
            return;
        }
        shared.persist_or_log(&entry.record);
        (
            entry.record.spec.clone(),
            Arc::clone(&entry.interrupt),
            Arc::clone(&entry.cancel_requested),
            Arc::clone(&entry.progress),
        )
    };

    let started = Instant::now();
    let end = crate::runner::execute(
        &spec,
        &shared.store.checkpoint_path(grant.id),
        shared.cfg.checkpoint_every_shards,
        grant.threads,
        Some(&interrupt),
        |p| *progress.lock().expect("progress lock") = Some(p.clone()),
    );
    obs::JOB_LATENCY.record_ns(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));

    let mut jobs = shared.jobs.lock().expect("jobs lock");
    let entry = jobs.get_mut(&grant.id).expect("running job has an entry");
    match end {
        RunEnd::Complete { result } => {
            entry.record.result = Some(result);
            finish(shared, &mut entry.record, JobState::Done);
            shared.store.remove_checkpoint(grant.id);
            obs::JOBS_DONE.inc();
        }
        RunEnd::Failed { error } => {
            entry.record.error = Some(error);
            finish(shared, &mut entry.record, JobState::Failed);
            obs::JOBS_FAILED.inc();
        }
        RunEnd::Interrupted => {
            if cancel_requested.load(Ordering::SeqCst) {
                finish(shared, &mut entry.record, JobState::Cancelled);
                shared.store.remove_checkpoint(grant.id);
                obs::JOBS_CANCELLED.inc();
            }
            // Otherwise this is a shutdown suspension: the journal
            // keeps the job `running`, and the next daemon run
            // requeues it to resume from the checkpoint just written.
        }
    }
    drop(jobs);
    shared.sched.release(grant.threads);
}

fn finish(shared: &Arc<Shared>, record: &mut JobRecord, state: JobState) {
    if let Err(e) = record.transition(state) {
        eprintln!("serve: {e}");
        return;
    }
    shared.persist_or_log(record);
}

/// Accepts connections from a nonblocking listener until shutdown,
/// handing each to its own handler thread.
fn accept_loop<S, F>(shared: &Arc<Shared>, mut accept: F)
where
    S: Read + Write + SetReadTimeout + Send + 'static,
    F: FnMut() -> io::Result<S>,
{
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match accept() {
            Ok(stream) => {
                obs::CONNECTIONS.inc();
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(&shared, stream)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// The `set_read_timeout` surface shared by unix and TCP streams
/// (std does not unify it in a trait).
trait SetReadTimeout {
    fn set_read_timeout_(&self, t: Option<Duration>) -> io::Result<()>;
    fn set_blocking(&self) -> io::Result<()>;
}

impl SetReadTimeout for std::os::unix::net::UnixStream {
    fn set_read_timeout_(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_blocking(&self) -> io::Result<()> {
        self.set_nonblocking(false)
    }
}

impl SetReadTimeout for std::net::TcpStream {
    fn set_read_timeout_(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn set_blocking(&self) -> io::Result<()> {
        self.set_nonblocking(false)
    }
}

/// Serves one connection: a loop of request lines, each answered on
/// the same stream. Read timeouts keep the loop responsive to
/// shutdown; any I/O error simply ends the connection.
fn handle_connection<S: Read + Write + SetReadTimeout>(shared: &Arc<Shared>, stream: S) {
    // Accepted sockets can inherit the listener's nonblocking mode.
    if stream.set_blocking().is_err() || stream.set_read_timeout_(Some(POLL * 10)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let request = line.trim();
                if !request.is_empty() && handle_line(shared, request, &mut reader).is_err() {
                    return;
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn write_json<W: Write>(out: &mut W, doc: &Json) -> io::Result<()> {
    out.write_all(doc.to_string_compact().as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Parses and executes one request line, writing the response line(s).
fn handle_line<S: Read + Write>(
    shared: &Arc<Shared>,
    line: &str,
    reader: &mut BufReader<S>,
) -> io::Result<()> {
    obs::REQUESTS.inc();
    let request = Json::parse(line)
        .map_err(|e| format!("bad JSON: {e}"))
        .and_then(|doc| Request::from_json(&doc));
    let out = reader.get_mut();
    match request {
        Err(message) => write_json(out, &error_response(&message, None)),
        Ok(Request::Submit {
            tenant,
            priority,
            spec,
        }) => {
            let response = submit(shared, &tenant, priority, spec);
            write_json(out, &response)
        }
        Ok(Request::Status(id)) => {
            let response = status(shared, id);
            write_json(out, &response)
        }
        Ok(Request::Result(id)) => {
            let response = result_of(shared, id);
            write_json(out, &response)
        }
        Ok(Request::Cancel(id)) => {
            let response = cancel(shared, id);
            write_json(out, &response)
        }
        Ok(Request::List { tenant }) => {
            let response = list(shared, tenant.as_deref());
            write_json(out, &response)
        }
        Ok(Request::Metrics) => {
            let rendered = cppc_obs::export::render_json(&cppc_obs::export::snapshot());
            let doc = Json::parse(&rendered).unwrap_or(Json::Null);
            write_json(out, &ok_response(vec![("metrics".into(), doc)]))
        }
        Ok(Request::Watch(id)) => watch(shared, id, out),
        Ok(Request::Shutdown) => {
            write_json(out, &ok_response(vec![]))?;
            shared.begin_shutdown();
            Ok(())
        }
    }
}

fn submit(
    shared: &Arc<Shared>,
    tenant: &str,
    priority: Priority,
    spec: crate::job::JobSpec,
) -> Json {
    if shared.shutting_down() {
        return error_response("daemon is shutting down", Some(1000));
    }
    if let Err(e) = spec.validate() {
        return error_response(&format!("invalid spec: {e}"), None);
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let record = JobRecord::new(id, tenant.to_string(), priority, spec.clone());
    if let Err(e) = shared.store.persist(&record) {
        return error_response(&format!("cannot journal job: {e}"), None);
    }
    // Journal first, then admit: a job the scheduler knows about is
    // always durable. Roll the journal entry back on backpressure.
    let mut jobs = shared.jobs.lock().expect("jobs lock");
    match shared.sched.submit(id, tenant, priority, spec.threads) {
        Ok(()) => {
            jobs.insert(id, JobEntry::new(record));
            obs::JOBS_SUBMITTED.inc();
            ok_response(vec![("id".into(), Json::UInt(id))])
        }
        Err(bp) => {
            drop(jobs);
            if let Err(e) = shared.store.remove_record(id) {
                eprintln!("serve: failed to roll back job {id}: {e}");
            }
            error_response("queue full", Some(bp.retry_after_ms.max(50)))
        }
    }
}

fn record_summary(record: &JobRecord) -> Vec<(String, Json)> {
    vec![
        ("id".into(), Json::UInt(record.id)),
        ("tenant".into(), Json::Str(record.tenant.clone())),
        (
            "priority".into(),
            Json::Str(record.priority.as_str().into()),
        ),
        ("kind".into(), Json::Str(record.spec.kind.name().into())),
        ("trials".into(), Json::UInt(record.spec.trials)),
        ("state".into(), Json::Str(record.state.as_str().into())),
    ]
}

fn status(shared: &Arc<Shared>, id: JobId) -> Json {
    let jobs = shared.jobs.lock().expect("jobs lock");
    let Some(entry) = jobs.get(&id) else {
        return error_response(&format!("unknown job {id}"), None);
    };
    let mut fields = record_summary(&entry.record);
    if let Some(e) = &entry.record.error {
        fields.push(("error".into(), Json::Str(e.clone())));
    }
    if entry.record.state == JobState::Running {
        if let Some(p) = entry.progress.lock().expect("progress lock").as_ref() {
            fields.extend(progress_fields(p));
        }
    }
    ok_response(fields)
}

fn progress_fields(p: &Progress) -> Vec<(String, Json)> {
    vec![
        ("trials_done".into(), Json::UInt(p.trials_done)),
        ("trials_total".into(), Json::UInt(p.trials_total)),
        ("trials_per_sec".into(), Json::Num(p.trials_per_sec)),
        ("eta_secs".into(), Json::Num(p.eta_secs)),
        ("elapsed_secs".into(), Json::Num(p.elapsed_secs)),
        (
            "counters".into(),
            Json::Obj(
                p.counters
                    .iter()
                    .map(|&(label, count)| (label.to_string(), Json::UInt(count)))
                    .collect(),
            ),
        ),
    ]
}

fn result_of(shared: &Arc<Shared>, id: JobId) -> Json {
    let jobs = shared.jobs.lock().expect("jobs lock");
    let Some(entry) = jobs.get(&id) else {
        return error_response(&format!("unknown job {id}"), None);
    };
    match (&entry.record.state, &entry.record.result) {
        (JobState::Done, Some(result)) => ok_response(vec![
            ("id".into(), Json::UInt(id)),
            ("result".into(), result.clone()),
        ]),
        (JobState::Failed, _) => {
            error_response(entry.record.error.as_deref().unwrap_or("job failed"), None)
        }
        (JobState::Cancelled, _) => error_response(&format!("job {id} was cancelled"), None),
        _ => error_response(
            &format!("job {id} is {}", entry.record.state.as_str()),
            None,
        ),
    }
}

fn cancel(shared: &Arc<Shared>, id: JobId) -> Json {
    let mut jobs = shared.jobs.lock().expect("jobs lock");
    let Some(entry) = jobs.get_mut(&id) else {
        return error_response(&format!("unknown job {id}"), None);
    };
    match entry.record.state {
        JobState::Queued => {
            if shared.sched.remove(id) {
                entry
                    .record
                    .transition(JobState::Cancelled)
                    .expect("queued->cancelled");
                shared.persist_or_log(&entry.record);
                shared.store.remove_checkpoint(id);
                obs::JOBS_CANCELLED.inc();
                ok_response(vec![("state".into(), Json::Str("cancelled".into()))])
            } else {
                // Granted but not yet marked running: flag it so the
                // worker cancels the moment it starts.
                entry.cancel_requested.store(true, Ordering::SeqCst);
                entry.interrupt.store(true, Ordering::SeqCst);
                ok_response(vec![("state".into(), Json::Str("cancelling".into()))])
            }
        }
        JobState::Running => {
            entry.cancel_requested.store(true, Ordering::SeqCst);
            entry.interrupt.store(true, Ordering::SeqCst);
            ok_response(vec![("state".into(), Json::Str("cancelling".into()))])
        }
        state => error_response(&format!("job {id} already {}", state.as_str()), None),
    }
}

fn list(shared: &Arc<Shared>, tenant: Option<&str>) -> Json {
    let jobs = shared.jobs.lock().expect("jobs lock");
    let mut ids: Vec<JobId> = jobs
        .values()
        .filter(|e| tenant.is_none_or(|t| e.record.tenant == t))
        .map(|e| e.record.id)
        .collect();
    ids.sort_unstable();
    let rows = ids
        .iter()
        .map(|id| Json::Obj(record_summary(&jobs[id].record)))
        .collect();
    ok_response(vec![("jobs".into(), Json::Arr(rows))])
}

/// Streams `{"event":"progress",...}` lines until the job is terminal
/// (or the daemon shuts down), then one `{"event":"end",...}` line.
fn watch<W: Write>(shared: &Arc<Shared>, id: JobId, out: &mut W) -> io::Result<()> {
    obs::WATCH_STREAMS.inc();
    loop {
        enum Tick {
            Progress(Json),
            End(Json),
        }
        let tick = {
            let jobs = shared.jobs.lock().expect("jobs lock");
            let Some(entry) = jobs.get(&id) else {
                return write_json(out, &error_response(&format!("unknown job {id}"), None));
            };
            let state = entry.record.state;
            if state.is_terminal() {
                let mut fields = vec![
                    ("event".to_string(), Json::Str("end".into())),
                    ("state".to_string(), Json::Str(state.as_str().into())),
                ];
                if let Some(r) = &entry.record.result {
                    fields.push(("result".into(), r.clone()));
                }
                if let Some(e) = &entry.record.error {
                    fields.push(("error".into(), Json::Str(e.clone())));
                }
                Tick::End(Json::Obj(fields))
            } else if shared.shutting_down() {
                Tick::End(Json::Obj(vec![
                    ("event".to_string(), Json::Str("end".into())),
                    ("state".to_string(), Json::Str(state.as_str().into())),
                    (
                        "error".to_string(),
                        Json::Str("daemon shutting down; job suspended".into()),
                    ),
                ]))
            } else {
                let mut fields = vec![
                    ("event".to_string(), Json::Str("progress".into())),
                    ("state".to_string(), Json::Str(state.as_str().into())),
                ];
                if let Some(p) = entry.progress.lock().expect("progress lock").as_ref() {
                    fields.extend(progress_fields(p));
                }
                Tick::Progress(Json::Obj(fields))
            }
        };
        match tick {
            Tick::End(doc) => return write_json(out, &doc),
            Tick::Progress(doc) => write_json(out, &doc)?,
        }
        std::thread::sleep(WATCH_TICK);
    }
}
