//! Block-granularity SECDED.
//!
//! The paper's L2 SECDED baseline attaches one code to a whole cache
//! *block* instead of each word (§6: "As an L2 cache, a SECDED is
//! attached to a block instead of each word"), which shrinks the check
//! storage (10+1 bits for 256 data bits instead of 4x8) at the price of
//! a read-modify-write on partial writes. This module implements an
//! extended Hamming code over arbitrary-width data carried in `&[u64]`
//! words.
//!
//! The construction is the same as [`crate::secded`]: 1-based codeword
//! positions, powers of two hold check bits, everything else holds data
//! bits in order, plus one overall parity bit.

use std::fmt;

/// Decode outcome for a block codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockDecodeOutcome {
    /// No error; the data is as stored.
    Clean(Vec<u64>),
    /// One bit (data or check) was corrected.
    Corrected {
        /// The repaired data words.
        data: Vec<u64>,
        /// 1-based codeword position of the repaired bit (0 = overall
        /// parity bit).
        position: u32,
    },
    /// Double-bit error detected — uncorrectable.
    DetectedUncorrectable,
}

impl BlockDecodeOutcome {
    /// The usable data, if any.
    #[must_use]
    pub fn data(self) -> Option<Vec<u64>> {
        match self {
            BlockDecodeOutcome::Clean(d) | BlockDecodeOutcome::Corrected { data: d, .. } => Some(d),
            BlockDecodeOutcome::DetectedUncorrectable => None,
        }
    }

    /// `true` if a bit was repaired.
    #[must_use]
    pub fn was_corrected(&self) -> bool {
        matches!(self, BlockDecodeOutcome::Corrected { .. })
    }
}

/// Error for mismatched widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthError {
    expected: usize,
    got: usize,
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} data words, got {}", self.expected, self.got)
    }
}

impl std::error::Error for WidthError {}

/// An extended Hamming SECDED code over `data_words x 64` bits.
///
/// # Example
///
/// ```
/// use cppc_ecc::secded_block::BlockSecded;
///
/// // The paper's L2 block: 32 bytes = 4 words = 256 data bits.
/// let code = BlockSecded::new(4);
/// assert_eq!(code.check_bits(), 9 + 1); // 9 Hamming bits + overall parity
/// let check = code.encode(&[1, 2, 3, 4]).unwrap();
/// let out = code.decode(&[1, 2, 3, 4], check).unwrap();
/// assert!(matches!(out, cppc_ecc::secded_block::BlockDecodeOutcome::Clean(_)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockSecded {
    data_words: usize,
    hamming_bits: u32,
}

impl BlockSecded {
    /// Creates a code for blocks of `data_words` 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `data_words` is zero or absurdly large (> 1024 words).
    #[must_use]
    pub fn new(data_words: usize) -> Self {
        assert!(
            (1..=1024).contains(&data_words),
            "data words must be in 1..=1024"
        );
        let data_bits = (data_words * 64) as u32;
        // Smallest r with 2^r >= data_bits + r + 1.
        let mut r = 1u32;
        while (1u64 << r) < u64::from(data_bits) + u64::from(r) + 1 {
            r += 1;
        }
        BlockSecded {
            data_words,
            hamming_bits: r,
        }
    }

    /// Data words per block.
    #[must_use]
    pub fn data_words(&self) -> usize {
        self.data_words
    }

    /// Check bits stored per block (Hamming bits + the overall bit).
    #[must_use]
    pub fn check_bits(&self) -> u32 {
        self.hamming_bits + 1
    }

    /// Storage overhead as a fraction of the data bits — the area win
    /// over per-word SECDED (e.g. 11/256 ≈ 4.3% vs 12.5%).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        f64::from(self.check_bits()) / (self.data_words as f64 * 64.0)
    }

    fn total_positions(&self) -> u32 {
        self.data_words as u32 * 64 + self.hamming_bits
    }

    /// Iterates `(codeword_position, data_bit_index)` pairs.
    fn data_positions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let total = self.total_positions();
        (1..=total)
            .filter(|p| !p.is_power_of_two())
            .enumerate()
            .map(|(d, p)| (p, d as u32))
    }

    fn data_bit(data: &[u64], bit: u32) -> u64 {
        data[(bit / 64) as usize] >> (bit % 64) & 1
    }

    /// Encodes a block, returning the packed check bits: bits
    /// `0..hamming_bits` are the Hamming check bits, bit `hamming_bits`
    /// is the overall parity over data + Hamming bits.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if `data` has the wrong width.
    pub fn encode(&self, data: &[u64]) -> Result<u32, WidthError> {
        if data.len() != self.data_words {
            return Err(WidthError {
                expected: self.data_words,
                got: data.len(),
            });
        }
        // Syndrome of the data bits alone = XOR of positions of set bits;
        // check bit c must equal bit c of that XOR so the full codeword
        // syndromes to zero.
        let mut xor_positions = 0u32;
        let mut ones = 0u32;
        for (pos, d) in self.data_positions() {
            if Self::data_bit(data, d) == 1 {
                xor_positions ^= pos;
                ones ^= 1;
            }
        }
        let hamming = xor_positions & ((1 << self.hamming_bits) - 1);
        debug_assert_eq!(xor_positions, hamming, "positions fit in hamming bits");
        let overall = ones ^ (hamming.count_ones() & 1);
        Ok(hamming | (overall << self.hamming_bits))
    }

    /// Decodes a (possibly corrupted) block against its stored check
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if `data` has the wrong width.
    pub fn decode(&self, data: &[u64], check: u32) -> Result<BlockDecodeOutcome, WidthError> {
        if data.len() != self.data_words {
            return Err(WidthError {
                expected: self.data_words,
                got: data.len(),
            });
        }
        let stored_hamming = check & ((1 << self.hamming_bits) - 1);
        let stored_overall = check >> self.hamming_bits & 1;

        let mut syndrome = 0u32;
        let mut ones = 0u32;
        for (pos, d) in self.data_positions() {
            if Self::data_bit(data, d) == 1 {
                syndrome ^= pos;
                ones ^= 1;
            }
        }
        // Fold in the stored check bits at their power-of-two positions.
        for c in 0..self.hamming_bits {
            if stored_hamming >> c & 1 == 1 {
                syndrome ^= 1 << c;
                ones ^= 1;
            }
        }
        let overall_ok = ones == stored_overall;

        match (syndrome, overall_ok) {
            (0, true) => Ok(BlockDecodeOutcome::Clean(data.to_vec())),
            (0, false) => Ok(BlockDecodeOutcome::Corrected {
                data: data.to_vec(),
                position: 0,
            }),
            (s, false) if s <= self.total_positions() => {
                let mut repaired = data.to_vec();
                if !s.is_power_of_two() {
                    // A data bit: find its data index.
                    let d = self
                        .data_positions()
                        .find(|&(pos, _)| pos == s)
                        .map(|(_, d)| d)
                        .expect("non-power position is a data position");
                    repaired[(d / 64) as usize] ^= 1u64 << (d % 64);
                }
                Ok(BlockDecodeOutcome::Corrected {
                    data: repaired,
                    position: s,
                })
            }
            _ => Ok(BlockDecodeOutcome::DetectedUncorrectable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn paper_l2_block_dimensions() {
        // 256 data bits need 9 Hamming bits (2^9 = 512 >= 256 + 9 + 1)…
        let code = BlockSecded::new(4);
        assert_eq!(code.check_bits(), 10);
        // …for a 3.9% overhead vs per-word SECDED's 12.5%.
        assert!(code.overhead() < 0.05);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let code = BlockSecded::new(4);
        let data = [0xDEAD_BEEF, 0x0123_4567_89AB_CDEF, u64::MAX, 0];
        let check = code.encode(&data).unwrap();
        assert_eq!(
            code.decode(&data, check).unwrap(),
            BlockDecodeOutcome::Clean(data.to_vec())
        );
    }

    #[test]
    fn corrects_every_data_bit() {
        let code = BlockSecded::new(2);
        let data = [0xAAAA_5555_F00D_CAFE, 0x1111_2222_3333_4444];
        let check = code.encode(&data).unwrap();
        for bit in 0..128u32 {
            let mut corrupted = data;
            corrupted[(bit / 64) as usize] ^= 1u64 << (bit % 64);
            let out = code.decode(&corrupted, check).unwrap();
            assert!(out.was_corrected(), "bit {bit}");
            assert_eq!(out.data(), Some(data.to_vec()), "bit {bit}");
        }
    }

    #[test]
    fn corrects_every_check_bit() {
        let code = BlockSecded::new(2);
        let data = [7, 9];
        let check = code.encode(&data).unwrap();
        for c in 0..code.check_bits() {
            let out = code.decode(&data, check ^ (1 << c)).unwrap();
            assert_eq!(out.data(), Some(data.to_vec()), "check bit {c}");
        }
    }

    #[test]
    fn detects_double_data_flips() {
        let code = BlockSecded::new(4);
        let data = [1, 2, 3, 4];
        let check = code.encode(&data).unwrap();
        for (a, b) in [(0u32, 1u32), (5, 200), (63, 64), (100, 255)] {
            let mut corrupted = data;
            corrupted[(a / 64) as usize] ^= 1u64 << (a % 64);
            corrupted[(b / 64) as usize] ^= 1u64 << (b % 64);
            assert_eq!(
                code.decode(&corrupted, check).unwrap(),
                BlockDecodeOutcome::DetectedUncorrectable,
                "bits {a},{b}"
            );
        }
    }

    #[test]
    fn width_errors() {
        let code = BlockSecded::new(4);
        assert!(code.encode(&[1, 2]).is_err());
        assert!(code.decode(&[1, 2], 0).is_err());
        let e = code.encode(&[0; 3]).unwrap_err();
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn single_word_block_matches_word_secded_capability() {
        let code = BlockSecded::new(1);
        assert_eq!(code.check_bits(), 8); // 7 Hamming + overall, like (72,64)
    }

    #[test]
    #[should_panic(expected = "data words must be")]
    fn zero_words_panics() {
        let _ = BlockSecded::new(0);
    }

    fn random_block(rng: &mut StdRng) -> Vec<u64> {
        (0..4).map(|_| rng.random::<u64>()).collect()
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x5ECD_0001);
        for _ in 0..128 {
            let data = random_block(&mut rng);
            let code = BlockSecded::new(4);
            let check = code.encode(&data).unwrap();
            assert_eq!(
                code.decode(&data, check).unwrap(),
                BlockDecodeOutcome::Clean(data.clone())
            );
        }
    }

    #[test]
    fn prop_single_flip_corrected() {
        let mut rng = StdRng::seed_from_u64(0x5ECD_0002);
        for _ in 0..128 {
            let data = random_block(&mut rng);
            let bit = rng.random_range(0u32..256);
            let code = BlockSecded::new(4);
            let check = code.encode(&data).unwrap();
            let mut corrupted = data.clone();
            corrupted[(bit / 64) as usize] ^= 1u64 << (bit % 64);
            let out = code.decode(&corrupted, check).unwrap();
            assert_eq!(out.data(), Some(data), "bit {bit}");
        }
    }

    #[test]
    fn prop_double_flip_detected() {
        let mut rng = StdRng::seed_from_u64(0x5ECD_0003);
        for _ in 0..128 {
            let data = random_block(&mut rng);
            let a = rng.random_range(0u32..256);
            let b = rng.random_range(0u32..256);
            if a == b {
                continue;
            }
            let code = BlockSecded::new(4);
            let check = code.encode(&data).unwrap();
            let mut corrupted = data.clone();
            corrupted[(a / 64) as usize] ^= 1u64 << (a % 64);
            corrupted[(b / 64) as usize] ^= 1u64 << (b % 64);
            assert_eq!(
                code.decode(&corrupted, check).unwrap(),
                BlockDecodeOutcome::DetectedUncorrectable,
                "bits {a},{b}"
            );
        }
    }
}
