//! Physical bit interleaving layout arithmetic.
//!
//! Bit interleaving stores bit *i* of several different words in adjacent
//! physical cells, so a spatial multi-bit upset striking `d` adjacent
//! cells flips at most one bit in each of `d` different words — turning a
//! spatial MBE into several independently-correctable single-bit errors.
//! This is how the paper's SECDED baseline tolerates spatial MBEs, at the
//! cost of precharging `degree ×` more bitlines per access (the energy
//! penalty quantified in Figures 11/12).

/// An interleaving layout: `degree` logical words of `bits_per_word` bits
/// share one physical row of `degree * bits_per_word` columns.
///
/// Physical column `c` holds bit `c / degree` of word `c % degree`.
///
/// # Example
///
/// ```
/// use cppc_ecc::interleave::BitInterleaving;
///
/// let il = BitInterleaving::new(8, 64);
/// assert_eq!(il.column_to_logical(0), (0, 0));
/// assert_eq!(il.column_to_logical(9), (1, 1)); // word 1, bit 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitInterleaving {
    degree: u32,
    bits_per_word: u32,
}

impl BitInterleaving {
    /// Creates a layout interleaving `degree` words of `bits_per_word`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(degree: u32, bits_per_word: u32) -> Self {
        assert!(
            degree > 0 && bits_per_word > 0,
            "degree and width must be non-zero"
        );
        BitInterleaving {
            degree,
            bits_per_word,
        }
    }

    /// The interleaving degree (words sharing a physical row).
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total physical columns per row.
    #[must_use]
    pub fn row_width(&self) -> u32 {
        self.degree * self.bits_per_word
    }

    /// Maps physical column → `(word_index, bit_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `column >= row_width()`.
    #[must_use]
    pub fn column_to_logical(&self, column: u32) -> (u32, u32) {
        assert!(column < self.row_width(), "column {column} out of range");
        (column % self.degree, column / self.degree)
    }

    /// Maps `(word_index, bit_index)` → physical column.
    ///
    /// # Panics
    ///
    /// Panics if `word >= degree` or `bit >= bits_per_word`.
    #[must_use]
    pub fn logical_to_column(&self, word: u32, bit: u32) -> u32 {
        assert!(word < self.degree, "word {word} out of range");
        assert!(bit < self.bits_per_word, "bit {bit} out of range");
        bit * self.degree + word
    }

    /// Decomposes a horizontal burst of `len` adjacent physical columns
    /// starting at `start` into per-word bit-flip lists.
    ///
    /// Returns `(word_index, bits_flipped)` pairs for each affected word.
    /// When `len <= degree`, every list contains at most one bit — the
    /// property that makes interleaved SECDED spatial-MBE tolerant.
    ///
    /// # Panics
    ///
    /// Panics if the burst runs past the end of the row.
    #[must_use]
    pub fn burst_to_flips(&self, start: u32, len: u32) -> Vec<(u32, Vec<u32>)> {
        assert!(
            start + len <= self.row_width(),
            "burst [{start}, {}) exceeds row width {}",
            start + len,
            self.row_width()
        );
        let mut per_word: Vec<(u32, Vec<u32>)> = Vec::new();
        for column in start..start + len {
            let (word, bit) = self.column_to_logical(column);
            match per_word.iter_mut().find(|(w, _)| *w == word) {
                Some((_, bits)) => bits.push(bit),
                None => per_word.push((word, vec![bit])),
            }
        }
        per_word.sort_by_key(|(w, _)| *w);
        per_word
    }

    /// `true` iff any horizontal burst of `len` columns flips at most one
    /// bit per word (i.e. `len <= degree`).
    #[must_use]
    pub fn tolerates_burst(&self, len: u32) -> bool {
        len <= self.degree
    }

    /// The bitline-energy multiplier relative to a non-interleaved array:
    /// every access must precharge `degree ×` the bitlines (paper §6.2,
    /// following \[12\]).
    #[must_use]
    pub fn bitline_energy_multiplier(&self) -> f64 {
        f64::from(self.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn mapping_roundtrip() {
        let il = BitInterleaving::new(8, 64);
        for col in 0..il.row_width() {
            let (w, b) = il.column_to_logical(col);
            assert_eq!(il.logical_to_column(w, b), col);
        }
    }

    #[test]
    fn burst_within_degree_hits_distinct_words() {
        let il = BitInterleaving::new(8, 64);
        for start in 0..(il.row_width() - 8) {
            let flips = il.burst_to_flips(start, 8);
            assert_eq!(flips.len(), 8, "start {start}: 8 distinct words");
            for (_, bits) in &flips {
                assert_eq!(bits.len(), 1, "one bit per word");
            }
        }
    }

    #[test]
    fn burst_beyond_degree_doubles_up() {
        let il = BitInterleaving::new(4, 16);
        let flips = il.burst_to_flips(0, 5);
        // 5 columns over degree 4: word 0 takes two flips.
        assert_eq!(flips[0].0, 0);
        assert_eq!(flips[0].1.len(), 2);
    }

    #[test]
    fn tolerates_burst_boundary() {
        let il = BitInterleaving::new(8, 64);
        assert!(il.tolerates_burst(8));
        assert!(!il.tolerates_burst(9));
    }

    #[test]
    fn energy_multiplier_is_degree() {
        assert!((BitInterleaving::new(8, 64).bitline_energy_multiplier() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds row width")]
    fn overlong_burst_panics() {
        let _ = BitInterleaving::new(2, 4).burst_to_flips(6, 3);
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x11E1_0001);
        for _ in 0..256 {
            let degree = rng.random_range(1u32..16);
            let bits = rng.random_range(1u32..128);
            let il = BitInterleaving::new(degree, bits);
            let col = rng.random::<u64>() as u32 % il.row_width();
            let (w, b) = il.column_to_logical(col);
            assert_eq!(
                il.logical_to_column(w, b),
                col,
                "degree={degree} bits={bits}"
            );
        }
    }

    #[test]
    fn prop_burst_le_degree_one_flip_per_word() {
        let mut rng = StdRng::seed_from_u64(0x11E1_0002);
        for _ in 0..256 {
            let degree = rng.random_range(1u32..16);
            let il = BitInterleaving::new(degree, 64);
            let len = 1 + rng.random::<u64>() as u32 % degree;
            let start = rng.random::<u64>() as u32 % (il.row_width() - len);
            for (_, bits) in il.burst_to_flips(start, len) {
                assert_eq!(bits.len(), 1, "degree={degree} start={start} len={len}");
            }
        }
    }
}
