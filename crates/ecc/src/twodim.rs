//! Two-dimensional parity, the MICRO-40 baseline the paper compares
//! against (reference \[12\], Kim et al.).
//!
//! Horizontal parity (k-way interleaved, along each word) detects errors;
//! a vertical parity row (the XOR of all data rows, column-wise) corrects
//! them: the faulty row equals the XOR of the vertical parity row with
//! every other row.
//!
//! The crucial cost the paper highlights: since the vertical parity
//! changes on *every* store and on *every* miss fill, the old data must be
//! read before being overwritten ("read-before-write") on all of those
//! events — not just on stores to dirty words as in CPPC. This module
//! therefore exposes explicit old-data parameters so callers are forced to
//! perform (and account for) the read.

use crate::interleaved::InterleavedParity;

/// A vertical parity row plus per-word horizontal interleaved parity over
/// a logical array of `rows × words_per_row` 64-bit words.
///
/// The structure only owns the *parity* state; the data itself lives in
/// the cache model. This mirrors the hardware split between data array
/// and code array.
///
/// # Example
///
/// ```
/// use cppc_ecc::twodim::TwoDimParity;
///
/// let mut p = TwoDimParity::new(4, 2, 8);
/// // Row 1 becomes [0xFF, 0x00] (old contents were zero).
/// p.store(1, 0, 0x00, 0xFF);
/// // Recover row 1 from the other (all-zero) rows:
/// let recovered = p.recover_row(&[vec![0, 0], vec![0, 0], vec![0, 0]]);
/// assert_eq!(recovered, vec![0xFF, 0x00]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoDimParity {
    vertical: Vec<u64>,
    horizontal: Vec<u64>,
    rows: usize,
    words_per_row: usize,
    code: InterleavedParity,
    read_before_writes: u64,
}

impl TwoDimParity {
    /// Creates parity state for an array of `rows` rows of
    /// `words_per_row` 64-bit words each, with `ways`-way horizontal
    /// interleaved parity. All data is assumed initially zero.
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `words_per_row` are zero or `ways` does not
    /// divide 64.
    #[must_use]
    pub fn new(rows: usize, words_per_row: usize, ways: u32) -> Self {
        assert!(rows > 0 && words_per_row > 0, "array must be non-empty");
        TwoDimParity {
            vertical: vec![0; words_per_row],
            horizontal: vec![0; rows * words_per_row],
            rows,
            words_per_row,
            code: InterleavedParity::new(ways),
            read_before_writes: 0,
        }
    }

    /// Number of rows covered by the (single) vertical parity row.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// How many read-before-write operations this parity state has
    /// required so far — the quantity behind Figures 11/12.
    #[must_use]
    pub fn read_before_writes(&self) -> u64 {
        self.read_before_writes
    }

    fn index(&self, row: usize, word: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        assert!(word < self.words_per_row, "word {word} out of range");
        row * self.words_per_row + word
    }

    /// Records a store of `new` over `old` at (`row`, `word`).
    ///
    /// The caller must have *read* `old` from the data array first — this
    /// is the mandatory read-before-write, counted by this method.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range.
    pub fn store(&mut self, row: usize, word: usize, old: u64, new: u64) {
        let idx = self.index(row, word);
        self.vertical[word] ^= old ^ new;
        self.horizontal[idx] = self.code.encode(new);
        self.read_before_writes += 1;
    }

    /// Records a whole-row fill (miss refill or write-back replacement):
    /// `old_row` is the evicted contents, `new_row` the incoming line.
    ///
    /// Like [`TwoDimParity::store`], this requires reading the entire old
    /// line first; one read-before-write is counted per word.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or the slices are not
    /// `words_per_row` long.
    pub fn fill_row(&mut self, row: usize, old_row: &[u64], new_row: &[u64]) {
        assert_eq!(old_row.len(), self.words_per_row, "old row width");
        assert_eq!(new_row.len(), self.words_per_row, "new row width");
        for word in 0..self.words_per_row {
            let idx = self.index(row, word);
            self.vertical[word] ^= old_row[word] ^ new_row[word];
            self.horizontal[idx] = self.code.encode(new_row[word]);
            self.read_before_writes += 1;
        }
    }

    /// Checks the horizontal parity of the word at (`row`, `word`) against
    /// `data`; non-zero syndrome means a detected fault.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range.
    #[must_use]
    pub fn check_word(&self, row: usize, word: usize, data: u64) -> u64 {
        let idx = self.index(row, word);
        self.code.syndrome(data, self.horizontal[idx])
    }

    /// Reconstructs one (faulty) row by XORing the vertical parity row
    /// with every *other* row's data, supplied in any order.
    ///
    /// # Panics
    ///
    /// Panics if `other_rows` does not contain exactly `rows - 1` rows of
    /// the correct width.
    #[must_use]
    pub fn recover_row(&self, other_rows: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(
            other_rows.len(),
            self.rows - 1,
            "need all rows except the faulty one"
        );
        let mut out = self.vertical.clone();
        for row in other_rows {
            assert_eq!(row.len(), self.words_per_row, "row width");
            for (o, w) in out.iter_mut().zip(row) {
                *o ^= w;
            }
        }
        out
    }

    /// Re-encodes the horizontal parity for a freshly repaired word (used
    /// after recovery writes corrected data back).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range.
    pub fn rewrite_horizontal(&mut self, row: usize, word: usize, data: u64) {
        let idx = self.index(row, word);
        self.horizontal[idx] = self.code.encode(data);
    }

    /// The vertical parity row (for invariant checking in tests).
    #[must_use]
    pub fn vertical_row(&self) -> &[u64] {
        &self.vertical
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    /// Reference model: real data array + TwoDimParity bookkeeping.
    struct Array {
        data: Vec<Vec<u64>>,
        parity: TwoDimParity,
    }

    impl Array {
        fn new(rows: usize, words: usize) -> Self {
            Array {
                data: vec![vec![0; words]; rows],
                parity: TwoDimParity::new(rows, words, 8),
            }
        }

        fn store(&mut self, row: usize, word: usize, value: u64) {
            let old = self.data[row][word];
            self.parity.store(row, word, old, value);
            self.data[row][word] = value;
        }

        fn vertical_invariant_holds(&self) -> bool {
            let words = self.parity.words_per_row();
            let mut expect = vec![0u64; words];
            for row in &self.data {
                for (e, w) in expect.iter_mut().zip(row) {
                    *e ^= w;
                }
            }
            expect == self.parity.vertical_row()
        }
    }

    #[test]
    fn vertical_row_tracks_stores() {
        let mut a = Array::new(4, 2);
        a.store(0, 0, 0xAAAA);
        a.store(1, 0, 0x5555);
        a.store(0, 0, 0x1234); // overwrite
        a.store(3, 1, u64::MAX);
        assert!(a.vertical_invariant_holds());
    }

    #[test]
    fn recover_single_faulty_row() {
        let mut a = Array::new(4, 2);
        a.store(0, 0, 0xDEAD);
        a.store(1, 1, 0xBEEF);
        a.store(2, 0, 0xF00D);
        // Row 1 gets hit by a particle; rebuild it from rows 0, 2, 3.
        let others: Vec<Vec<u64>> = [0usize, 2, 3].iter().map(|&r| a.data[r].clone()).collect();
        let rebuilt = a.parity.recover_row(&others);
        assert_eq!(rebuilt, a.data[1]);
    }

    #[test]
    fn fill_row_updates_vertical() {
        let mut a = Array::new(3, 4);
        a.store(1, 2, 77);
        let old = a.data[2].clone();
        let new = vec![1, 2, 3, 4];
        a.parity.fill_row(2, &old, &new);
        a.data[2] = new;
        assert!(a.vertical_invariant_holds());
    }

    #[test]
    fn read_before_write_counted_per_word() {
        let mut p = TwoDimParity::new(2, 4, 8);
        p.store(0, 0, 0, 1);
        assert_eq!(p.read_before_writes(), 1);
        p.fill_row(1, &[0; 4], &[9; 4]);
        assert_eq!(p.read_before_writes(), 5);
    }

    #[test]
    fn horizontal_detects_burst() {
        let mut p = TwoDimParity::new(2, 1, 8);
        p.store(0, 0, 0, 0x0F0F);
        // 3-bit burst flip:
        let corrupted = 0x0F0F ^ (0b111 << 20);
        assert_ne!(p.check_word(0, 0, corrupted), 0);
        assert_eq!(p.check_word(0, 0, 0x0F0F), 0);
    }

    #[test]
    #[should_panic(expected = "row 5 out of range")]
    fn store_out_of_range_panics() {
        TwoDimParity::new(2, 1, 8).store(5, 0, 0, 0);
    }

    #[test]
    fn randomised_vertical_invariant() {
        let mut rng = StdRng::seed_from_u64(0x2D1);
        let mut a = Array::new(16, 4);
        for _ in 0..2000 {
            let row = rng.random_range(0..16);
            let word = rng.random_range(0..4);
            a.store(row, word, rng.random());
        }
        assert!(a.vertical_invariant_holds());
        // Any single row is recoverable.
        for victim in 0..16 {
            let others: Vec<Vec<u64>> = (0..16)
                .filter(|&r| r != victim)
                .map(|r| a.data[r].clone())
                .collect();
            assert_eq!(
                a.parity.recover_row(&others),
                a.data[victim],
                "row {victim}"
            );
        }
    }

    #[test]
    fn prop_recovery_after_stores() {
        let mut rng = StdRng::seed_from_u64(0x2D11);
        for _ in 0..128 {
            let mut a = Array::new(8, 2);
            for _ in 0..rng.random_range(1usize..64) {
                let row = rng.random_range(0usize..8);
                let word = rng.random_range(0usize..2);
                a.store(row, word, rng.random::<u64>());
            }
            let victim = rng.random_range(0usize..8);
            let others: Vec<Vec<u64>> = (0..8)
                .filter(|&r| r != victim)
                .map(|r| a.data[r].clone())
                .collect();
            assert_eq!(a.parity.recover_row(&others), a.data[victim].clone());
        }
    }
}
