//! *k*-way interleaved parity (paper §3.6).
//!
//! Interleaved parities are XORs of non-adjacent bits of a protection
//! domain: `P[i] = XOR(bit[i], bit[i+k], bit[i+2k], …)`. With `k = 8` on a
//! 64-bit word, every spatial multi-bit error flipping 8 or fewer
//! *adjacent* bits inside the word is detected, because no two of those
//! bits share a parity group.

/// A `k`-way interleaved parity code over 64-bit words.
///
/// `k` must divide 64. `k = 1` degenerates to plain word parity; the
/// paper's CPPC configuration uses `k = 8`.
///
/// # Example
///
/// ```
/// use cppc_ecc::interleaved::InterleavedParity;
///
/// let code = InterleavedParity::new(8);
/// let p = code.encode(0x00FF_00FF_00FF_00FF);
/// assert_eq!(code.syndrome(0x00FF_00FF_00FF_00FF, p), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterleavedParity {
    ways: u32,
}

impl InterleavedParity {
    /// Creates a `ways`-way interleaved parity code.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or does not divide 64.
    #[must_use]
    pub fn new(ways: u32) -> Self {
        assert!(
            ways > 0 && 64 % ways == 0,
            "ways must divide 64, got {ways}"
        );
        InterleavedParity { ways }
    }

    /// Number of parity groups (= number of parity bits per word).
    #[must_use]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Computes the parity bits for `word`. Bit `i` of the result is the
    /// parity of group `i` (bits `i, i+k, i+2k, …`).
    #[inline]
    #[must_use]
    pub fn encode(&self, word: u64) -> u64 {
        let mut parity = 0u64;
        let mut folded = word;
        // Fold the word down onto its low `ways` bits by repeated XOR of
        // the halves — valid because XOR is associative/commutative and
        // each fold step XORs bit j with bit j + width/2, preserving
        // group membership (ways divides every intermediate width).
        let mut width = 64;
        while width > self.ways {
            width /= 2;
            if width >= self.ways {
                folded = (folded ^ (folded >> width)) & ((1u128 << width) - 1) as u64;
            } else {
                // ways is not a power of two; fall back to direct sum.
                folded = self.encode_direct(word);
                width = self.ways;
            }
        }
        parity |= folded & (((1u128 << self.ways) - 1) as u64);
        parity
    }

    fn encode_direct(&self, word: u64) -> u64 {
        let mut parity = 0u64;
        for bit in 0..64u32 {
            if word >> bit & 1 == 1 {
                parity ^= 1u64 << (bit % self.ways);
            }
        }
        parity
    }

    /// Recomputes parity over `word` and XORs with the `stored` parity.
    /// A non-zero result means the groups whose bits are set detected a
    /// fault.
    #[inline]
    #[must_use]
    pub fn syndrome(&self, word: u64, stored: u64) -> u64 {
        self.encode(word) ^ stored
    }

    /// Encodes every word of a block into the parallel `parity` slice,
    /// through the runtime-dispatched [`crate::kernels`].
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn encode_slice(&self, words: &[u64], parity: &mut [u64]) {
        assert_eq!(words.len(), parity.len(), "parallel slices");
        crate::kernels::encode_many(words, self.ways, parity);
    }

    /// OR of the per-word syndromes of a block: non-zero iff *any* word
    /// disagrees with its stored parity.
    ///
    /// The fold must be OR, not XOR — XOR-folding syndromes across words
    /// would cancel identical error pairs, and this helper exists for
    /// detect-any checks where that would be a missed detection. Runs
    /// through the runtime-dispatched [`crate::kernels`].
    #[inline]
    #[must_use]
    pub fn block_syndrome_or(&self, words: &[u64], stored: &[u64]) -> u64 {
        debug_assert_eq!(words.len(), stored.len(), "parallel slices");
        crate::kernels::block_syndrome_or(words, stored, self.ways)
    }

    /// Returns `true` iff a *contiguous* horizontal flip of `n` bits
    /// starting anywhere in the word is guaranteed detectable (`n ≤ k`).
    #[must_use]
    pub fn detects_burst(&self, n: u32) -> bool {
        n >= 1 && n <= self.ways
    }

    /// The parity-group index of data bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[must_use]
    pub fn group_of(&self, bit: u32) -> u32 {
        assert!(bit < 64);
        bit % self.ways
    }
}

impl Default for InterleavedParity {
    /// The paper's configuration: 8-way interleaved parity.
    fn default() -> Self {
        InterleavedParity::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    fn reference_encode(word: u64, ways: u32) -> u64 {
        let mut parity = 0u64;
        for bit in 0..64u32 {
            if word >> bit & 1 == 1 {
                parity ^= 1u64 << (bit % ways);
            }
        }
        parity
    }

    #[test]
    fn one_way_matches_plain_parity() {
        let code = InterleavedParity::new(1);
        for w in [0u64, 1, 3, u64::MAX, 0x8000_0000_0000_0001] {
            assert_eq!(code.encode(w), u64::from(crate::parity::parity64(w)));
        }
    }

    #[test]
    fn eight_way_all_ones() {
        // 64 bits = 8 per group → even parity everywhere.
        assert_eq!(InterleavedParity::new(8).encode(u64::MAX), 0);
    }

    #[test]
    fn group_of_is_mod_ways() {
        let code = InterleavedParity::new(8);
        assert_eq!(code.group_of(0), 0);
        assert_eq!(code.group_of(8), 0);
        assert_eq!(code.group_of(63), 7);
    }

    #[test]
    fn detects_burst_up_to_ways() {
        let code = InterleavedParity::new(8);
        assert!(code.detects_burst(1));
        assert!(code.detects_burst(8));
        assert!(!code.detects_burst(9));
        assert!(!code.detects_burst(0));
    }

    #[test]
    fn burst_of_k_bits_sets_k_syndrome_bits() {
        let code = InterleavedParity::new(8);
        let word = 0xDEAD_BEEF_CAFE_F00Du64;
        let stored = code.encode(word);
        // Flip bits 10..18 (8 adjacent bits).
        let fault = 0xFFu64 << 10;
        let syn = code.syndrome(word ^ fault, stored);
        assert_eq!(syn.count_ones(), 8, "all 8 groups must fire");
    }

    #[test]
    #[should_panic(expected = "ways must divide 64")]
    fn bad_ways_panics() {
        let _ = InterleavedParity::new(7);
    }

    #[test]
    fn encode_matches_reference() {
        let mut rng = StdRng::seed_from_u64(0x117E_0001);
        let all_ways = [1u32, 2, 4, 8, 16, 32, 64];
        for _ in 0..256 {
            let word = rng.random::<u64>();
            let ways = all_ways[rng.random_range(0..all_ways.len())];
            let code = InterleavedParity::new(ways);
            assert_eq!(
                code.encode(word),
                reference_encode(word, ways),
                "ways {ways}"
            );
        }
    }

    #[test]
    fn clean_syndrome_is_zero() {
        let mut rng = StdRng::seed_from_u64(0x117E_0002);
        for _ in 0..256 {
            let word = rng.random::<u64>();
            let code = InterleavedParity::new(8);
            assert_eq!(code.syndrome(word, code.encode(word)), 0);
        }
    }

    #[test]
    fn any_burst_le_8_detected() {
        let mut rng = StdRng::seed_from_u64(0x117E_0003);
        for _ in 0..256 {
            let word = rng.random::<u64>();
            let start = rng.random_range(0u32..64);
            let len = rng.random_range(1u32..=8);
            let code = InterleavedParity::new(8);
            let stored = code.encode(word);
            // A burst that would run off the top of the word is clipped —
            // still at least one bit flips.
            let len = len.min(64 - start);
            let mask = if len == 64 {
                u64::MAX
            } else {
                ((1u64 << len) - 1) << start
            };
            let syn = code.syndrome(word ^ mask, stored);
            assert_eq!(syn.count_ones(), len, "each flipped bit its own group");
        }
    }

    #[test]
    fn encode_slice_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(0x117E_0005);
        let code = InterleavedParity::new(8);
        let words: Vec<u64> = (0..16).map(|_| rng.random()).collect();
        let mut parity = vec![0u64; words.len()];
        code.encode_slice(&words, &mut parity);
        for (w, p) in words.iter().zip(&parity) {
            assert_eq!(code.encode(*w), *p);
        }
    }

    #[test]
    fn block_syndrome_or_detects_cancelling_pair() {
        // The case that rules out an XOR fold: the same error mask in
        // two words of a block produces identical syndromes, which an
        // XOR fold would cancel to zero.
        let code = InterleavedParity::new(8);
        let words = [0xDEAD_BEEFu64, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
        let mut stored = [0u64; 4];
        code.encode_slice(&words, &mut stored);
        assert_eq!(code.block_syndrome_or(&words, &stored), 0);
        let mut struck = words;
        struck[1] ^= 0b101;
        struck[3] ^= 0b101;
        assert_ne!(code.block_syndrome_or(&struck, &stored), 0);
        let xor_fold: u64 = struck
            .iter()
            .zip(&stored)
            .fold(0, |acc, (&w, &p)| acc ^ code.syndrome(w, p));
        assert_eq!(xor_fold, 0, "the pair cancels under XOR — hence OR");
    }

    #[test]
    fn encoding_is_linear() {
        let mut rng = StdRng::seed_from_u64(0x117E_0004);
        for _ in 0..256 {
            let a = rng.random::<u64>();
            let b = rng.random::<u64>();
            let code = InterleavedParity::new(8);
            assert_eq!(code.encode(a ^ b), code.encode(a) ^ code.encode(b));
        }
    }
}
