//! Vectorized parity kernels with one-time runtime dispatch.
//!
//! Every hot loop of the fault-injection engine bottoms out in one of
//! three kernel shapes: an XOR fold (block parity), a per-word
//! interleaved-parity fold (syndrome computation) and a byte-parity
//! gather. This module provides explicit `core::arch::x86_64`
//! SSE2/AVX2 implementations of all three, selected once per process
//! by a CPU-feature probe, with the existing SWAR code as the
//! guaranteed-available fallback — so targets without SIMD (or builds
//! with the `simd` feature disabled) compile cleanly to the scalar
//! path with no `cfg` leakage into callers.
//!
//! Single-word helpers ([`crate::parity::byte_parity64`],
//! [`crate::parity::parity64`]) intentionally stay SWAR: a dispatch
//! branch per 64-bit word costs more than it saves. The kernels here
//! are the *slice* forms the recovery scans and the cross-trial batch
//! engine call — wide enough for the lane arithmetic to pay for the
//! dispatch.
//!
//! # Forcing a dispatch level
//!
//! The environment variable `CPPC_KERNEL` (`swar`, `sse2` or `avx2`,
//! read once at first use) caps the probe's choice, so CI can pin the
//! scalar path on any host. Requesting a level the CPU lacks falls
//! back to the best available one.
#![allow(unsafe_code)]

use core::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the one-time probe selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Portable scalar SWAR — always available.
    Swar,
    /// 128-bit `core::arch::x86_64` lanes (baseline on x86_64).
    Sse2,
    /// 256-bit `core::arch::x86_64` lanes.
    Avx2,
}

impl KernelKind {
    /// Stable lower-case name (`"swar"`, `"sse2"`, `"avx2"`) for
    /// metrics and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Swar => "swar",
            KernelKind::Sse2 => "sse2",
            KernelKind::Avx2 => "avx2",
        }
    }
}

/// `ACTIVE` holds `kind as u8 + 1`; 0 means "not probed yet".
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn decode(v: u8) -> KernelKind {
    match v {
        2 => KernelKind::Sse2,
        3 => KernelKind::Avx2,
        _ => KernelKind::Swar,
    }
}

/// What the hardware supports, before the `CPPC_KERNEL` cap.
fn detect() -> KernelKind {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // SSE2 is architecturally guaranteed on x86_64.
        if std::arch::is_x86_feature_detected!("avx2") {
            KernelKind::Avx2
        } else {
            KernelKind::Sse2
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    KernelKind::Swar
}

fn probe() -> KernelKind {
    let detected = detect();
    let capped = match std::env::var("CPPC_KERNEL").as_deref() {
        Ok("swar") => KernelKind::Swar,
        Ok("sse2") => {
            if detected == KernelKind::Swar {
                KernelKind::Swar
            } else {
                KernelKind::Sse2
            }
        }
        _ => detected,
    };
    capped
}

/// The kernel implementation in use, probed once per process.
#[must_use]
pub fn active() -> KernelKind {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let kind = probe();
            ACTIVE.store(kind as u8 + 1, Ordering::Relaxed);
            kind
        }
        v => decode(v),
    }
}

/// XOR-folds a byte slice into one 64-bit lane (tail bytes folded into
/// the low byte). `parity64` of the result is the slice's block parity.
#[inline]
#[must_use]
pub fn fold_xor_bytes(bytes: &[u8]) -> u64 {
    match active() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `active()` returned Avx2/Sse2 only after
        // `is_x86_feature_detected!` confirmed the feature.
        KernelKind::Avx2 => unsafe { x86::fold_xor_bytes_avx2(bytes) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as above — SSE2 is confirmed (and architectural).
        KernelKind::Sse2 => unsafe { x86::fold_xor_bytes_sse2(bytes) },
        _ => swar::fold_xor_bytes(bytes),
    }
}

/// Block parity of a byte slice — the vectorized form of
/// [`crate::parity::parity_bytes`].
#[inline]
#[must_use]
pub fn parity_bytes(bytes: &[u8]) -> u8 {
    crate::parity::parity64(fold_xor_bytes(bytes))
}

/// Interleaved-parity encode of every word in `words` into `out`
/// (the slice form of [`crate::InterleavedParity::encode`]).
///
/// # Panics
///
/// Panics if the slices differ in length or `ways` does not divide 64.
#[inline]
pub fn encode_many(words: &[u64], ways: u32, out: &mut [u64]) {
    assert_eq!(words.len(), out.len(), "parallel slices");
    assert!(ways > 0 && 64 % ways == 0, "ways must divide 64");
    match active() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: feature confirmed by the probe.
        KernelKind::Avx2 => unsafe { x86::encode_many_avx2(words, ways, out) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: feature confirmed by the probe.
        KernelKind::Sse2 => unsafe { x86::encode_many_sse2(words, ways, out) },
        _ => swar::encode_many(words, ways, out),
    }
}

/// OR of per-word interleaved-parity syndromes: non-zero iff *any*
/// word disagrees with its stored parity (the slice form of
/// [`crate::InterleavedParity::block_syndrome_or`]).
///
/// # Panics
///
/// Panics if the slices differ in length or `ways` does not divide 64.
#[inline]
#[must_use]
pub fn block_syndrome_or(words: &[u64], stored: &[u64], ways: u32) -> u64 {
    assert_eq!(words.len(), stored.len(), "parallel slices");
    assert!(ways > 0 && 64 % ways == 0, "ways must divide 64");
    match active() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: feature confirmed by the probe.
        KernelKind::Avx2 => unsafe { x86::block_syndrome_or_avx2(words, stored, ways) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: feature confirmed by the probe.
        KernelKind::Sse2 => unsafe { x86::block_syndrome_or_sse2(words, stored, ways) },
        _ => swar::block_syndrome_or(words, stored, ways),
    }
}

/// Byte parity of every word in `words` into `out` — the slice form of
/// [`crate::parity::byte_parity64`]. Bit `i` of `out[j]` is the even
/// parity of byte `i` of `words[j]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn byte_parity_many(words: &[u64], out: &mut [u8]) {
    assert_eq!(words.len(), out.len(), "parallel slices");
    match active() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: feature confirmed by the probe.
        KernelKind::Avx2 => unsafe { x86::byte_parity_many_avx2(words, out) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: feature confirmed by the probe.
        KernelKind::Sse2 => unsafe { x86::byte_parity_many_sse2(words, out) },
        _ => swar::byte_parity_many(words, out),
    }
}

/// The guaranteed-available SWAR kernels — also the reference the
/// differential tests pin the vector paths against.
pub mod swar {
    /// Scalar interleaved-parity encode: fold the halves down to the
    /// low `ways` bits (bitwise-identical to
    /// [`crate::InterleavedParity::encode`] for every `ways` that
    /// divides 64 — all of which are powers of two).
    #[inline]
    #[must_use]
    pub fn encode_one(word: u64, ways: u32) -> u64 {
        let mut folded = word;
        let mut shift = 32u32;
        while shift >= ways {
            folded ^= folded >> shift;
            shift /= 2;
        }
        folded & mask(ways)
    }

    /// Low-`ways` bit mask.
    #[inline]
    #[must_use]
    pub fn mask(ways: u32) -> u64 {
        ((1u128 << ways) - 1) as u64
    }

    /// Scalar [`super::fold_xor_bytes`].
    #[inline]
    #[must_use]
    pub fn fold_xor_bytes(bytes: &[u8]) -> u64 {
        let mut chunks = bytes.chunks_exact(8);
        let mut folded = 0u64;
        for chunk in chunks.by_ref() {
            folded ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let tail = chunks.remainder().iter().fold(0u8, |acc, &b| acc ^ b);
        folded ^ u64::from(tail)
    }

    /// Scalar [`super::encode_many`].
    #[inline]
    pub fn encode_many(words: &[u64], ways: u32, out: &mut [u64]) {
        for (o, &w) in out.iter_mut().zip(words) {
            *o = encode_one(w, ways);
        }
    }

    /// Scalar [`super::block_syndrome_or`].
    #[inline]
    #[must_use]
    pub fn block_syndrome_or(words: &[u64], stored: &[u64], ways: u32) -> u64 {
        words
            .iter()
            .zip(stored)
            .fold(0u64, |acc, (&w, &p)| acc | (encode_one(w, ways) ^ p))
    }

    /// Scalar [`super::byte_parity_many`].
    #[inline]
    pub fn byte_parity_many(words: &[u64], out: &mut [u8]) {
        for (o, &w) in out.iter_mut().zip(words) {
            *o = crate::parity::byte_parity64(w);
        }
    }
}

/// `core::arch::x86_64` lane implementations.
///
/// Each function carries a `#[target_feature]` attribute and is only
/// reachable through [`active`], which confirmed the feature at
/// runtime. The folds mirror the SWAR code lane-wise: high garbage
/// bits introduced by skipping intermediate masking never reach the
/// low `ways` bits (each fold step only shifts *downward*), so one
/// final mask restores bit-exact equality with the scalar path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::swar;
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_castsi256_si128, _mm256_extracti128_si256,
        _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_setzero_si256, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256, _mm_and_si128, _mm_cvtsi128_si64, _mm_loadu_si128, _mm_movemask_epi8,
        _mm_or_si128, _mm_set1_epi64x, _mm_setzero_si128, _mm_slli_epi64, _mm_srli_epi64,
        _mm_srli_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    #[inline]
    unsafe fn reduce_xor_256(v: __m256i) -> u64 {
        let folded = _mm_xor_si128(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        reduce_xor_128(folded)
    }

    #[inline]
    unsafe fn reduce_xor_128(v: __m128i) -> u64 {
        (_mm_cvtsi128_si64(v) ^ _mm_cvtsi128_si64(_mm_srli_si128::<8>(v))) as u64
    }

    #[inline]
    unsafe fn reduce_or_256(v: __m256i) -> u64 {
        let folded = _mm_or_si128(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        reduce_or_128(folded)
    }

    #[inline]
    unsafe fn reduce_or_128(v: __m128i) -> u64 {
        (_mm_cvtsi128_si64(v) | _mm_cvtsi128_si64(_mm_srli_si128::<8>(v))) as u64
    }

    /// Lane-wise interleaved-parity fold of four words at once.
    #[inline]
    unsafe fn encode_lanes_256(mut v: __m256i, ways: u32) -> __m256i {
        let mut shift = 32i32;
        while shift >= ways as i32 {
            v = _mm256_xor_si256(
                v,
                match shift {
                    32 => _mm256_srli_epi64::<32>(v),
                    16 => _mm256_srli_epi64::<16>(v),
                    8 => _mm256_srli_epi64::<8>(v),
                    4 => _mm256_srli_epi64::<4>(v),
                    2 => _mm256_srli_epi64::<2>(v),
                    _ => _mm256_srli_epi64::<1>(v),
                },
            );
            shift /= 2;
        }
        _mm256_and_si256(v, _mm256_set1_epi64x(swar::mask(ways) as i64))
    }

    /// Lane-wise interleaved-parity fold of two words at once.
    #[inline]
    unsafe fn encode_lanes_128(mut v: __m128i, ways: u32) -> __m128i {
        let mut shift = 32i32;
        while shift >= ways as i32 {
            v = _mm_xor_si128(
                v,
                match shift {
                    32 => _mm_srli_epi64::<32>(v),
                    16 => _mm_srli_epi64::<16>(v),
                    8 => _mm_srli_epi64::<8>(v),
                    4 => _mm_srli_epi64::<4>(v),
                    2 => _mm_srli_epi64::<2>(v),
                    _ => _mm_srli_epi64::<1>(v),
                },
            );
            shift /= 2;
        }
        _mm_and_si128(v, _mm_set1_epi64x(swar::mask(ways) as i64))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_xor_bytes_avx2(bytes: &[u8]) -> u64 {
        let mut chunks = bytes.chunks_exact(32);
        let mut acc = _mm256_setzero_si256();
        for chunk in chunks.by_ref() {
            acc = _mm256_xor_si256(acc, _mm256_loadu_si256(chunk.as_ptr().cast()));
        }
        reduce_xor_256(acc) ^ swar::fold_xor_bytes(chunks.remainder())
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn fold_xor_bytes_sse2(bytes: &[u8]) -> u64 {
        let mut chunks = bytes.chunks_exact(16);
        let mut acc = _mm_setzero_si128();
        for chunk in chunks.by_ref() {
            acc = _mm_xor_si128(acc, _mm_loadu_si128(chunk.as_ptr().cast()));
        }
        reduce_xor_128(acc) ^ swar::fold_xor_bytes(chunks.remainder())
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn encode_many_avx2(words: &[u64], ways: u32, out: &mut [u64]) {
        let mut chunks = words.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        for (chunk, o) in chunks.by_ref().zip(outs.by_ref()) {
            let v = encode_lanes_256(_mm256_loadu_si256(chunk.as_ptr().cast()), ways);
            _mm256_storeu_si256(o.as_mut_ptr().cast(), v);
        }
        swar::encode_many(chunks.remainder(), ways, outs.into_remainder());
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn encode_many_sse2(words: &[u64], ways: u32, out: &mut [u64]) {
        let mut chunks = words.chunks_exact(2);
        let mut outs = out.chunks_exact_mut(2);
        for (chunk, o) in chunks.by_ref().zip(outs.by_ref()) {
            let v = encode_lanes_128(_mm_loadu_si128(chunk.as_ptr().cast()), ways);
            _mm_storeu_si128(o.as_mut_ptr().cast(), v);
        }
        swar::encode_many(chunks.remainder(), ways, outs.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn block_syndrome_or_avx2(words: &[u64], stored: &[u64], ways: u32) -> u64 {
        let mut wchunks = words.chunks_exact(4);
        let mut pchunks = stored.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for (wc, pc) in wchunks.by_ref().zip(pchunks.by_ref()) {
            let enc = encode_lanes_256(_mm256_loadu_si256(wc.as_ptr().cast()), ways);
            let p = _mm256_loadu_si256(pc.as_ptr().cast());
            acc = _mm256_or_si256(acc, _mm256_xor_si256(enc, p));
        }
        reduce_or_256(acc) | swar::block_syndrome_or(wchunks.remainder(), pchunks.remainder(), ways)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn block_syndrome_or_sse2(words: &[u64], stored: &[u64], ways: u32) -> u64 {
        let mut wchunks = words.chunks_exact(2);
        let mut pchunks = stored.chunks_exact(2);
        let mut acc = _mm_setzero_si128();
        for (wc, pc) in wchunks.by_ref().zip(pchunks.by_ref()) {
            let enc = encode_lanes_128(_mm_loadu_si128(wc.as_ptr().cast()), ways);
            let p = _mm_loadu_si128(pc.as_ptr().cast());
            acc = _mm_or_si128(acc, _mm_xor_si128(enc, p));
        }
        reduce_or_128(acc) | swar::block_syndrome_or(wchunks.remainder(), pchunks.remainder(), ways)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn byte_parity_many_avx2(words: &[u64], out: &mut [u8]) {
        let mut chunks = words.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        let ones = _mm256_set1_epi64x(0x0101_0101_0101_0101u64 as i64);
        for (chunk, o) in chunks.by_ref().zip(outs.by_ref()) {
            // Fold each byte's parity onto its bit 0, move it to the
            // byte's MSB and gather all 32 MSBs with movemask: bits
            // 8j..8j+8 of the mask are word j's byte parities.
            let mut v = _mm256_loadu_si256(chunk.as_ptr().cast());
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<4>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<2>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<1>(v));
            v = _mm256_slli_epi64::<7>(_mm256_and_si256(v, ones));
            let mask = _mm256_movemask_epi8(v) as u32;
            o.copy_from_slice(&mask.to_le_bytes());
        }
        swar::byte_parity_many(chunks.remainder(), outs.into_remainder());
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn byte_parity_many_sse2(words: &[u64], out: &mut [u8]) {
        let mut chunks = words.chunks_exact(2);
        let mut outs = out.chunks_exact_mut(2);
        let ones = _mm_set1_epi64x(0x0101_0101_0101_0101u64 as i64);
        for (chunk, o) in chunks.by_ref().zip(outs.by_ref()) {
            let mut v = _mm_loadu_si128(chunk.as_ptr().cast());
            v = _mm_xor_si128(v, _mm_srli_epi64::<4>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<2>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<1>(v));
            v = _mm_slli_epi64::<7>(_mm_and_si128(v, ones));
            let mask = _mm_movemask_epi8(v) as u16;
            o.copy_from_slice(&mask.to_le_bytes());
        }
        swar::byte_parity_many(chunks.remainder(), outs.into_remainder());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    /// Bit-at-a-time reference encode, independent of both the SWAR
    /// fold and the vector lanes.
    fn naive_encode(word: u64, ways: u32) -> u64 {
        let mut parity = 0u64;
        for bit in 0..64u32 {
            if word >> bit & 1 == 1 {
                parity ^= 1u64 << (bit % ways);
            }
        }
        parity
    }

    fn naive_byte_parity(word: u64) -> u8 {
        let mut out = 0u8;
        for i in 0..8 {
            let byte = ((word >> (8 * i)) & 0xFF) as u8;
            out |= ((byte.count_ones() & 1) as u8) << i;
        }
        out
    }

    fn naive_parity_bytes(bytes: &[u8]) -> u8 {
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        (ones & 1) as u8
    }

    const ALL_WAYS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

    #[test]
    fn active_is_stable_and_named() {
        let k = active();
        assert_eq!(active(), k, "probe must be cached");
        assert!(["swar", "sse2", "avx2"].contains(&k.name()));
    }

    #[test]
    fn swar_encode_matches_naive_all_ways() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0001);
        for _ in 0..512 {
            let w = rng.random::<u64>();
            for ways in ALL_WAYS {
                assert_eq!(
                    swar::encode_one(w, ways),
                    naive_encode(w, ways),
                    "ways {ways}"
                );
            }
        }
    }

    #[test]
    fn dispatched_encode_many_matches_swar_and_naive() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0002);
        // Random lengths hit the empty, sub-lane-width and remainder
        // edges of the vector paths.
        for len in 0..48usize {
            let words: Vec<u64> = (0..len).map(|_| rng.random()).collect();
            for ways in ALL_WAYS {
                let mut got = vec![0u64; len];
                let mut swar_out = vec![0u64; len];
                encode_many(&words, ways, &mut got);
                swar::encode_many(&words, ways, &mut swar_out);
                assert_eq!(got, swar_out, "len {len} ways {ways}");
                for (i, &w) in words.iter().enumerate() {
                    assert_eq!(got[i], naive_encode(w, ways), "len {len} ways {ways} i {i}");
                }
            }
        }
    }

    #[test]
    fn dispatched_block_syndrome_or_matches_swar() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0003);
        for len in 0..24usize {
            let words: Vec<u64> = (0..len).map(|_| rng.random()).collect();
            for ways in ALL_WAYS {
                let mut stored = vec![0u64; len];
                swar::encode_many(&words, ways, &mut stored);
                // Clean block: both paths agree on zero.
                assert_eq!(
                    block_syndrome_or(&words, &stored, ways),
                    0,
                    "clean len {len}"
                );
                // Struck block: flip a burst in one word.
                if len > 0 {
                    let mut struck = words.clone();
                    let i = rng.random_range(0..len);
                    struck[i] ^= 0b111 << rng.random_range(0u32..61);
                    assert_eq!(
                        block_syndrome_or(&struck, &stored, ways),
                        swar::block_syndrome_or(&struck, &stored, ways),
                        "len {len} ways {ways}"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatched_byte_parity_many_matches_swar_and_naive() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0004);
        for len in 0..40usize {
            let words: Vec<u64> = (0..len).map(|_| rng.random()).collect();
            let mut got = vec![0u8; len];
            let mut swar_out = vec![0u8; len];
            byte_parity_many(&words, &mut got);
            swar::byte_parity_many(&words, &mut swar_out);
            assert_eq!(got, swar_out, "len {len}");
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(got[i], naive_byte_parity(w), "len {len} i {i}");
            }
        }
    }

    #[test]
    fn dispatched_parity_bytes_matches_naive_across_alignments() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0005);
        let backing: Vec<u8> = (0..256).map(|_| rng.random::<u64>() as u8).collect();
        // Sweep lengths and start offsets so vector loads hit every
        // alignment class, including empty and sub-lane slices.
        for start in 0..8usize {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 200] {
                let slice = &backing[start..start + len];
                assert_eq!(
                    parity_bytes(slice),
                    naive_parity_bytes(slice),
                    "start {start} len {len}"
                );
                assert_eq!(
                    crate::parity::parity_bytes(slice),
                    naive_parity_bytes(slice),
                    "public API, start {start} len {len}"
                );
            }
        }
    }

    #[test]
    fn fold_xor_bytes_matches_swar() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0006);
        for len in 0..130usize {
            let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u64>() as u8).collect();
            assert_eq!(
                fold_xor_bytes(&bytes),
                swar::fold_xor_bytes(&bytes),
                "len {len}"
            );
        }
    }
}
