//! One-dimensional parity at configurable granularity.
//!
//! Commercial processors protect L1 caches with parity at block, word or
//! byte granularity (paper §1). This module provides the corresponding
//! encoders/checkers. Parity *detects* an odd number of flipped bits
//! inside its protection domain; it never corrects.

/// Computes even parity of a 64-bit word: `1` if the population count is
/// odd, so that `word XOR'ed bits ^ parity == 0` always holds.
///
/// # Example
///
/// ```
/// use cppc_ecc::parity::parity64;
/// assert_eq!(parity64(0), 0);
/// assert_eq!(parity64(0b1011), 1);
/// ```
#[inline]
#[must_use]
pub fn parity64(word: u64) -> u8 {
    (word.count_ones() & 1) as u8
}

/// Computes even parity over an arbitrary byte slice (block parity).
///
/// XOR-folds the slice into one 64-bit lane — parity is linear, so
/// folding first and counting once is equivalent to summing per-byte
/// population counts. The fold runs through the runtime-dispatched
/// [`crate::kernels`] (SSE2/AVX2 when available, SWAR otherwise).
#[inline]
#[must_use]
pub fn parity_bytes(bytes: &[u8]) -> u8 {
    parity64(crate::kernels::fold_xor_bytes(bytes))
}

/// Granularity at which one parity bit is attached.
///
/// The paper cites real processors using each of these: Itanium-2 protects
/// per block \[17\], PowerQUICC III per word \[8\], ARM Cortex-R per byte \[6\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParityGranularity {
    /// One parity bit per cache block.
    Block,
    /// One parity bit per 64-bit word.
    Word,
    /// One parity bit per byte (8 per 64-bit word).
    Byte,
}

impl ParityGranularity {
    /// Number of parity bits required to protect `block_bytes` bytes.
    #[must_use]
    pub fn bits_per_block(self, block_bytes: usize) -> usize {
        match self {
            ParityGranularity::Block => 1,
            ParityGranularity::Word => block_bytes.div_ceil(8),
            ParityGranularity::Byte => block_bytes,
        }
    }

    /// Storage overhead as a fraction of data bits (e.g. `1/64` for word
    /// parity on 64-bit words).
    #[must_use]
    pub fn overhead(self, block_bytes: usize) -> f64 {
        self.bits_per_block(block_bytes) as f64 / (block_bytes as f64 * 8.0)
    }
}

/// Parity bits covering one 64-bit word at byte granularity.
///
/// Bit `i` of the returned byte is the even parity of byte `i` of `word`.
///
/// # Example
///
/// ```
/// use cppc_ecc::parity::byte_parity64;
/// // Byte 0 = 0x01 (one bit set → parity 1); all other bytes zero.
/// assert_eq!(byte_parity64(0x01), 0b0000_0001);
/// ```
#[inline]
#[must_use]
pub fn byte_parity64(word: u64) -> u8 {
    // SWAR: fold each byte's bits onto its own bit 0, then gather the
    // eight LSBs into one byte. After the three folds, bit 8i is the
    // XOR of bits 8i..8i+7 (the higher bits of each byte are garbage
    // and masked off). The multiply moves the LSB of byte i to bit
    // 56 + i; partial-product bit positions 8i + 56 - 7j are pairwise
    // distinct for i, j < 8, so no carries interfere.
    let mut w = word;
    w ^= w >> 4;
    w ^= w >> 2;
    w ^= w >> 1;
    (((w & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080)) >> 56) as u8
}

/// A stored word together with its parity bits, checked on every read.
///
/// This is the storage element of the one-dimensional-parity baseline
/// cache. `check` recomputes parity from the (possibly corrupted) data
/// and compares against the stored bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParityWord {
    data: u64,
    parity: u8,
    granularity_bits: u8,
}

impl ParityWord {
    /// Encodes `data` with `k`-bit sectioned parity, `k ∈ {1, 8}`:
    /// `k = 1` is word parity, `k = 8` is byte parity.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not 1 or 8.
    #[must_use]
    pub fn encode(data: u64, k: u8) -> Self {
        let parity = match k {
            1 => parity64(data),
            8 => byte_parity64(data),
            _ => panic!("sectioned parity supports k=1 or k=8, got {k}"),
        };
        ParityWord {
            data,
            parity,
            granularity_bits: k,
        }
    }

    /// The protected data word (possibly corrupted by fault injection).
    #[must_use]
    pub fn data(&self) -> u64 {
        self.data
    }

    /// The stored parity bits.
    #[must_use]
    pub fn parity(&self) -> u8 {
        self.parity
    }

    /// Recomputes parity and returns `true` if it matches the stored bits.
    #[must_use]
    pub fn check(&self) -> bool {
        self.syndrome() == 0
    }

    /// The parity syndrome: a set bit marks a parity section that detected
    /// a fault. Zero means "no fault detected".
    #[must_use]
    pub fn syndrome(&self) -> u8 {
        let fresh = match self.granularity_bits {
            1 => parity64(self.data),
            8 => byte_parity64(self.data),
            _ => unreachable!("constructor validated k"),
        };
        fresh ^ self.parity
    }

    /// Flips bit `bit` (0-63) of the stored data — used by fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn flip_data_bit(&mut self, bit: u32) {
        assert!(bit < 64, "bit index {bit} out of range");
        self.data ^= 1u64 << bit;
    }

    /// Flips parity bit `bit` — used by fault injection on the code array.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_parity_bit(&mut self, bit: u32) {
        assert!(bit < 8, "parity bit index {bit} out of range");
        self.parity ^= 1u8 << bit;
    }

    /// Overwrites the data and re-encodes parity (a store).
    pub fn store(&mut self, data: u64) {
        *self = ParityWord::encode(data, self.granularity_bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn parity64_matches_popcount() {
        assert_eq!(parity64(u64::MAX), 0);
        assert_eq!(parity64(1), 1);
        assert_eq!(parity64(3), 0);
        assert_eq!(parity64(7), 1);
    }

    #[test]
    fn parity_bytes_empty_is_zero() {
        assert_eq!(parity_bytes(&[]), 0);
    }

    #[test]
    fn parity_bytes_matches_word_parity() {
        let w = 0x0123_4567_89AB_CDEFu64;
        assert_eq!(parity_bytes(&w.to_le_bytes()), parity64(w));
    }

    #[test]
    fn granularity_bit_counts() {
        assert_eq!(ParityGranularity::Block.bits_per_block(32), 1);
        assert_eq!(ParityGranularity::Word.bits_per_block(32), 4);
        assert_eq!(ParityGranularity::Byte.bits_per_block(32), 32);
    }

    #[test]
    fn granularity_overhead_word_is_one_64th() {
        let ov = ParityGranularity::Word.overhead(32);
        assert!((ov - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn byte_parity_detects_flip_in_right_byte() {
        let w = ParityWord::encode(0xFFFF_0000_1234_5678, 8);
        for byte in 0..8u32 {
            let mut c = w;
            c.flip_data_bit(byte * 8 + 3);
            assert_eq!(c.syndrome(), 1 << byte, "flip in byte {byte}");
        }
    }

    #[test]
    fn word_parity_misses_even_flips() {
        // The fundamental parity weakness the paper builds on: an even
        // number of flips in one domain is invisible.
        let mut w = ParityWord::encode(0xAAAA_BBBB_CCCC_DDDD, 1);
        w.flip_data_bit(0);
        w.flip_data_bit(1);
        assert!(w.check(), "double flip must be undetected by 1-bit parity");
    }

    #[test]
    fn interleaved_byte_parity_catches_adjacent_double_flip() {
        // …but byte parity catches a 2-bit flip spanning a byte boundary.
        let mut w = ParityWord::encode(0xAAAA_BBBB_CCCC_DDDD, 8);
        w.flip_data_bit(7);
        w.flip_data_bit(8);
        assert!(!w.check());
        assert_eq!(w.syndrome(), 0b11);
    }

    #[test]
    fn store_reencodes() {
        let mut w = ParityWord::encode(0, 8);
        w.store(u64::MAX);
        assert!(w.check());
        assert_eq!(w.data(), u64::MAX);
    }

    #[test]
    fn parity_bit_fault_is_detected() {
        let mut w = ParityWord::encode(42, 8);
        w.flip_parity_bit(2);
        assert!(!w.check());
    }

    #[test]
    #[should_panic(expected = "sectioned parity supports")]
    fn bad_granularity_panics() {
        let _ = ParityWord::encode(0, 4);
    }

    #[test]
    fn encode_always_checks_clean() {
        let mut rng = StdRng::seed_from_u64(0x9A81_0001);
        for _ in 0..256 {
            let data = rng.random::<u64>();
            assert!(ParityWord::encode(data, 1).check());
            assert!(ParityWord::encode(data, 8).check());
        }
    }

    #[test]
    fn any_single_flip_detected() {
        let mut rng = StdRng::seed_from_u64(0x9A81_0002);
        for _ in 0..256 {
            let data = rng.random::<u64>();
            let bit = rng.random_range(0u32..64);
            let mut w1 = ParityWord::encode(data, 1);
            w1.flip_data_bit(bit);
            assert!(!w1.check(), "bit {bit}");
            let mut w8 = ParityWord::encode(data, 8);
            w8.flip_data_bit(bit);
            assert!(!w8.check(), "bit {bit}");
        }
    }

    #[test]
    fn syndrome_localises_byte() {
        let mut rng = StdRng::seed_from_u64(0x9A81_0003);
        for _ in 0..256 {
            let data = rng.random::<u64>();
            let bit = rng.random_range(0u32..64);
            let mut w = ParityWord::encode(data, 8);
            w.flip_data_bit(bit);
            assert_eq!(w.syndrome(), 1u8 << (bit / 8), "bit {bit}");
        }
    }

    #[test]
    fn byte_parity_swar_matches_reference() {
        fn reference(word: u64) -> u8 {
            let mut out = 0u8;
            for i in 0..8 {
                let byte = ((word >> (8 * i)) & 0xFF) as u8;
                out |= ((byte.count_ones() & 1) as u8) << i;
            }
            out
        }
        let mut rng = StdRng::seed_from_u64(0x9A81_0005);
        for w in [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0001,
            0x0101_0101_0101_0101,
        ] {
            assert_eq!(byte_parity64(w), reference(w), "word {w:#x}");
        }
        for _ in 0..4096 {
            let w = rng.random::<u64>();
            assert_eq!(byte_parity64(w), reference(w), "word {w:#x}");
        }
    }

    #[test]
    fn parity_bytes_fold_matches_popcount_sum() {
        let mut rng = StdRng::seed_from_u64(0x9A81_0006);
        let mut buf = Vec::new();
        for len in 0..64usize {
            buf.clear();
            buf.extend((0..len).map(|_| rng.random::<u64>() as u8));
            let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
            assert_eq!(parity_bytes(&buf), (ones & 1) as u8, "len {len}");
        }
    }

    #[test]
    fn parity_is_linear() {
        // parity(a ^ b) == parity(a) ^ parity(b): the property CPPC's
        // XOR-register correction fundamentally relies on.
        let mut rng = StdRng::seed_from_u64(0x9A81_0004);
        for _ in 0..256 {
            let a = rng.random::<u64>();
            let b = rng.random::<u64>();
            assert_eq!(parity64(a ^ b), parity64(a) ^ parity64(b));
            assert_eq!(
                super::byte_parity64(a ^ b),
                super::byte_parity64(a) ^ super::byte_parity64(b)
            );
        }
    }
}
