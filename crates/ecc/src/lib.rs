//! Error-protection-code substrate for the CPPC reproduction.
//!
//! This crate implements every protection code the paper evaluates or
//! depends on:
//!
//! * [`parity`] — one-dimensional parity at word / byte / arbitrary
//!   granularity, the detection substrate of CPPC itself.
//! * [`interleaved`] — *k*-way interleaved parity
//!   (`P[i] = XOR(bit[i], bit[i+k], …)`), which detects spatial multi-bit
//!   errors of up to `k` adjacent bits inside one word (paper §3.6).
//! * [`secded`] — Single-Error-Correction Double-Error-Detection Hamming
//!   codes for 64-bit and 32-bit data words (the (72,64) and (39,32)
//!   codes used by the paper's SECDED baseline).
//! * [`twodim`] — two-dimensional parity (horizontal interleaved parity +
//!   vertical parity row), the MICRO-40 baseline \[12\] the paper compares
//!   against, including its read-before-write update rule.
//! * [`interleave`] — physical bit-interleaving layout arithmetic used by
//!   the SECDED baseline to tolerate spatial multi-bit errors.
//! * [`kernels`] — vectorized slice kernels (XOR folds, syndrome
//!   evaluation, byte-parity gathers) behind a one-time CPU-feature
//!   probe, with the SWAR code as the guaranteed fallback. The `simd`
//!   cargo feature (default on) gates the `core::arch` paths; without
//!   it every kernel is the scalar implementation.
//!
//! All codes operate on real data (`u64` words or byte slices), encode to
//! real check bits, and decode by recomputation — nothing is emulated with
//! flags. Fault injection in the wider workspace flips actual stored bits
//! and these codes detect/correct them exactly as hardware would.
//!
//! # Example
//!
//! ```
//! use cppc_ecc::secded::Secded64;
//!
//! let code = Secded64::encode(0xDEAD_BEEF_0123_4567);
//! // Flip a data bit in flight…
//! let mut corrupted = code;
//! corrupted.flip_data_bit(17);
//! let decoded = corrupted.decode();
//! assert_eq!(decoded.data(), Some(0xDEAD_BEEF_0123_4567));
//! ```

// `deny` rather than `forbid`: the `kernels` module opts back in for
// its runtime-dispatched `core::arch` intrinsics (each call site is
// guarded by the one-time CPU-feature probe). Everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod interleave;
pub mod interleaved;
pub mod kernels;
pub mod parity;
pub mod secded;
pub mod secded_block;
pub mod twodim;

pub use interleaved::InterleavedParity;
pub use parity::{parity64, ParityGranularity};
pub use secded::{DecodeOutcome, Secded32, Secded64};
pub use secded_block::{BlockDecodeOutcome, BlockSecded};
pub use twodim::TwoDimParity;
