//! SECDED Hamming codes: the paper's strong-correction baseline.
//!
//! Implements extended Hamming codes — a standard Hamming code plus one
//! overall parity bit — for 64-bit data ((72,64), 12.5% overhead, the code
//! the paper quotes) and 32-bit data ((39,32)). Single-bit errors anywhere
//! in the codeword (data *or* check bits) are corrected; double-bit errors
//! are detected but not correctable.
//!
//! The codeword layout is the classic one: bit positions are numbered from
//! 1; positions that are powers of two hold Hamming check bits; all other
//! positions hold data bits in ascending order; position 0 holds the
//! overall (extended) parity over every other bit.

/// Outcome of decoding a possibly-corrupted SECDED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// No error detected; payload is the stored data.
    Clean(u64),
    /// A single-bit error was corrected; payload is the repaired data and
    /// the 1-based codeword position of the flipped bit (0 = the overall
    /// parity bit itself).
    Corrected {
        /// The repaired data word.
        data: u64,
        /// Codeword position of the corrected bit (0 for the overall
        /// parity bit, otherwise the 1-based Hamming position).
        position: u32,
    },
    /// A double-bit (or other even multi-bit) error was detected; the data
    /// cannot be trusted. This is a DUE in the paper's terminology.
    DetectedUncorrectable,
}

impl DecodeOutcome {
    /// Returns the usable data word, or `None` on an uncorrectable error.
    #[must_use]
    pub fn data(&self) -> Option<u64> {
        match *self {
            DecodeOutcome::Clean(d) | DecodeOutcome::Corrected { data: d, .. } => Some(d),
            DecodeOutcome::DetectedUncorrectable => None,
        }
    }

    /// `true` if the decoder had to repair a bit.
    #[must_use]
    pub fn was_corrected(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }
}

/// Shared implementation for extended Hamming codes over `DATA_BITS` data
/// bits stored in a `u64`, with `CHECK_BITS` Hamming check bits (excluding
/// the extended parity bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ExtHamming<const DATA_BITS: u32, const CHECK_BITS: u32>;

impl<const DATA_BITS: u32, const CHECK_BITS: u32> ExtHamming<DATA_BITS, CHECK_BITS> {
    const TOTAL_POSITIONS: u32 = DATA_BITS + CHECK_BITS; // positions 1..=TOTAL

    /// Maps the d-th data bit (0-based) to its 1-based codeword position
    /// (skipping power-of-two positions).
    fn data_position(d: u32) -> u32 {
        debug_assert!(d < DATA_BITS);
        let mut pos = 1u32;
        let mut seen = 0;
        loop {
            if !pos.is_power_of_two() {
                if seen == d {
                    return pos;
                }
                seen += 1;
            }
            pos += 1;
        }
    }

    /// Spreads `data` into a codeword bit-vector indexed by position
    /// (index 0 unused here; extended parity handled separately).
    fn spread(data: u64) -> u128 {
        let mut cw: u128 = 0;
        let mut d = 0;
        for pos in 1..=Self::TOTAL_POSITIONS {
            if !pos.is_power_of_two() {
                if (data >> d) & 1 == 1 {
                    cw |= 1u128 << pos;
                }
                d += 1;
            }
        }
        debug_assert_eq!(d, DATA_BITS);
        cw
    }

    /// Extracts the data word from a codeword bit-vector.
    fn gather(cw: u128) -> u64 {
        let mut data = 0u64;
        let mut d = 0;
        for pos in 1..=Self::TOTAL_POSITIONS {
            if !pos.is_power_of_two() {
                if (cw >> pos) & 1 == 1 {
                    data |= 1u64 << d;
                }
                d += 1;
            }
        }
        data
    }

    /// Computes the Hamming check bits over codeword data positions and
    /// inserts them at power-of-two positions.
    fn with_check_bits(mut cw: u128) -> u128 {
        for c in 0..CHECK_BITS {
            let mask_pos = 1u32 << c;
            let mut parity = 0u128;
            for pos in 1..=Self::TOTAL_POSITIONS {
                if pos & mask_pos != 0 && !pos.is_power_of_two() {
                    parity ^= (cw >> pos) & 1;
                }
            }
            if parity == 1 {
                cw |= 1u128 << mask_pos;
            }
        }
        cw
    }

    fn encode(data: u64) -> (u128, u8) {
        let cw = Self::with_check_bits(Self::spread(data));
        let overall = (cw.count_ones() & 1) as u8;
        (cw, overall)
    }

    fn decode(cw: u128, overall: u8) -> DecodeOutcome {
        // Syndrome: XOR of positions of all set bits.
        let mut syndrome = 0u32;
        for pos in 1..=Self::TOTAL_POSITIONS {
            if (cw >> pos) & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let parity_now = (cw.count_ones() & 1) as u8;
        let overall_ok = parity_now == overall;

        match (syndrome, overall_ok) {
            (0, true) => DecodeOutcome::Clean(Self::gather(cw)),
            (0, false) => {
                // The extended parity bit itself flipped; data is intact.
                DecodeOutcome::Corrected {
                    data: Self::gather(cw),
                    position: 0,
                }
            }
            (s, false) if s <= Self::TOTAL_POSITIONS => {
                let repaired = cw ^ (1u128 << s);
                DecodeOutcome::Corrected {
                    data: Self::gather(repaired),
                    position: s,
                }
            }
            // Non-zero syndrome with correct overall parity ⇒ even number
            // of flips ⇒ uncorrectable. Also syndrome beyond the codeword
            // length (certain multi-bit patterns) is uncorrectable.
            _ => DecodeOutcome::DetectedUncorrectable,
        }
    }
}

macro_rules! secded_type {
    ($(#[$doc:meta])* $name:ident, $data_bits:expr, $check_bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name {
            codeword: u128,
            overall: u8,
        }

        impl $name {
            /// Number of data bits protected by one codeword.
            pub const DATA_BITS: u32 = $data_bits;
            /// Number of check bits including the extended parity bit.
            pub const CHECK_BITS: u32 = $check_bits + 1;

            /// Encodes `data` into a SECDED codeword.
            #[must_use]
            pub fn encode(data: u64) -> Self {
                let data = if Self::DATA_BITS < 64 {
                    data & ((1u64 << Self::DATA_BITS) - 1)
                } else {
                    data
                };
                let (codeword, overall) =
                    ExtHamming::<$data_bits, $check_bits>::encode(data);
                $name { codeword, overall }
            }

            /// Decodes, correcting a single-bit error or flagging a
            /// double-bit error.
            #[must_use]
            pub fn decode(&self) -> DecodeOutcome {
                ExtHamming::<$data_bits, $check_bits>::decode(self.codeword, self.overall)
            }

            /// Flips the codeword bit holding the `bit`-th *data* bit —
            /// used by fault injection.
            ///
            /// # Panics
            ///
            /// Panics if `bit >= Self::DATA_BITS`.
            pub fn flip_data_bit(&mut self, bit: u32) {
                assert!(bit < Self::DATA_BITS, "data bit {bit} out of range");
                let pos = ExtHamming::<$data_bits, $check_bits>::data_position(bit);
                self.codeword ^= 1u128 << pos;
            }

            /// Flips the `c`-th Hamming check bit (0-based), or the
            /// extended parity bit when `c == Self::CHECK_BITS - 1`.
            ///
            /// # Panics
            ///
            /// Panics if `c >= Self::CHECK_BITS`.
            pub fn flip_check_bit(&mut self, c: u32) {
                assert!(c < Self::CHECK_BITS, "check bit {c} out of range");
                if c == Self::CHECK_BITS - 1 {
                    self.overall ^= 1;
                } else {
                    self.codeword ^= 1u128 << (1u32 << c);
                }
            }

            /// Storage overhead: check bits / data bits (12.5% for the
            /// (72,64) code, as quoted in the paper's introduction).
            #[must_use]
            pub fn overhead() -> f64 {
                f64::from(Self::CHECK_BITS) / f64::from(Self::DATA_BITS)
            }

            /// Extracts the stored check bits: bit `c` is the `c`-th
            /// Hamming check bit, and bit `CHECK_BITS - 1` is the
            /// extended (overall) parity bit. Together with the data
            /// word this fully determines the codeword — real caches
            /// store data and check bits in separate arrays, and
            /// [`Self::from_parts`] reassembles them.
            #[must_use]
            pub fn check_bits(&self) -> u16 {
                let mut out = 0u16;
                for c in 0..(Self::CHECK_BITS - 1) {
                    if (self.codeword >> (1u32 << c)) & 1 == 1 {
                        out |= 1 << c;
                    }
                }
                out | (u16::from(self.overall) << (Self::CHECK_BITS - 1))
            }

            /// Reassembles a codeword from a (possibly corrupted) data
            /// word and separately stored check bits, ready to
            /// [`Self::decode`].
            #[must_use]
            pub fn from_parts(data: u64, check: u16) -> Self {
                let data = if Self::DATA_BITS < 64 {
                    data & ((1u64 << Self::DATA_BITS) - 1)
                } else {
                    data
                };
                let mut codeword = ExtHamming::<$data_bits, $check_bits>::spread(data);
                for c in 0..(Self::CHECK_BITS - 1) {
                    if (check >> c) & 1 == 1 {
                        codeword |= 1u128 << (1u32 << c);
                    }
                }
                let overall = ((check >> (Self::CHECK_BITS - 1)) & 1) as u8;
                $name { codeword, overall }
            }
        }
    };
}

secded_type!(
    /// The (72,64) SECDED code protecting one 64-bit word with 8 check
    /// bits — the configuration commercial L2/L3 caches use (paper §1).
    Secded64,
    64,
    7
);

secded_type!(
    /// The (39,32) SECDED code protecting one 32-bit word with 7 check
    /// bits.
    Secded32,
    32,
    6
);

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn overhead_matches_paper() {
        // "it takes 8 bits to protect a 64-bit word, a 12.5% area overhead"
        assert!((Secded64::overhead() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_clean() {
        for d in [0u64, 1, u64::MAX, 0xDEAD_BEEF_0123_4567] {
            assert_eq!(Secded64::encode(d).decode(), DecodeOutcome::Clean(d));
        }
    }

    #[test]
    fn roundtrip_clean_32() {
        for d in [0u64, 1, 0xFFFF_FFFF, 0x1234_5678] {
            assert_eq!(Secded32::encode(d).decode(), DecodeOutcome::Clean(d));
        }
    }

    #[test]
    fn corrects_every_single_data_bit_64() {
        let data = 0xA5A5_5A5A_F00D_CAFE;
        for bit in 0..64 {
            let mut cw = Secded64::encode(data);
            cw.flip_data_bit(bit);
            let out = cw.decode();
            assert_eq!(out.data(), Some(data), "bit {bit}");
            assert!(out.was_corrected());
        }
    }

    #[test]
    fn corrects_every_check_bit_64() {
        let data = 0x0123_4567_89AB_CDEF;
        for c in 0..Secded64::CHECK_BITS {
            let mut cw = Secded64::encode(data);
            cw.flip_check_bit(c);
            assert_eq!(cw.decode().data(), Some(data), "check bit {c}");
        }
    }

    #[test]
    fn detects_all_double_data_flips_32() {
        // Exhaustive over the 32-bit code: every pair of data-bit flips
        // must be flagged uncorrectable (never silently miscorrected).
        let data = 0x5A5A_1234u64;
        for a in 0..32 {
            for b in (a + 1)..32 {
                let mut cw = Secded32::encode(data);
                cw.flip_data_bit(a);
                cw.flip_data_bit(b);
                assert_eq!(
                    cw.decode(),
                    DecodeOutcome::DetectedUncorrectable,
                    "bits {a},{b}"
                );
            }
        }
    }

    #[test]
    fn detects_data_plus_check_double_flip() {
        let data = 0xFEED_F00D_DEAD_BEEF;
        for c in 0..Secded64::CHECK_BITS {
            let mut cw = Secded64::encode(data);
            cw.flip_data_bit(13);
            cw.flip_check_bit(c);
            assert_eq!(
                cw.decode(),
                DecodeOutcome::DetectedUncorrectable,
                "check {c}"
            );
        }
    }

    #[test]
    fn corrected_position_is_reported() {
        let mut cw = Secded64::encode(7);
        cw.flip_check_bit(Secded64::CHECK_BITS - 1); // extended parity bit
        match cw.decode() {
            DecodeOutcome::Corrected { position, .. } => assert_eq!(position, 0),
            other => panic!("expected corrected, got {other:?}"),
        }
    }

    #[test]
    fn data_masked_to_width_32() {
        // High bits beyond DATA_BITS are ignored for the 32-bit code.
        let cw = Secded32::encode(0xFFFF_FFFF_0000_0001);
        assert_eq!(cw.decode(), DecodeOutcome::Clean(1));
    }

    #[test]
    fn parts_roundtrip() {
        for d in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let cw = Secded64::encode(d);
            let rebuilt = Secded64::from_parts(d, cw.check_bits());
            assert_eq!(rebuilt, cw);
            assert_eq!(rebuilt.decode(), DecodeOutcome::Clean(d));
        }
    }

    #[test]
    fn parts_decode_corrects_corrupted_data() {
        let d = 0xFACE_0FF5_1234_5678;
        let check = Secded64::encode(d).check_bits();
        let corrupted = d ^ (1 << 40);
        assert_eq!(
            Secded64::from_parts(corrupted, check).decode().data(),
            Some(d)
        );
    }

    #[test]
    fn parts_decode_detects_corrupted_check() {
        let d = 0x42;
        let check = Secded64::encode(d).check_bits() ^ 0b101; // two check flips
        assert_eq!(
            Secded64::from_parts(d, check).decode(),
            DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x5EC0_0001);
        for _ in 0..256 {
            let data = rng.random::<u64>();
            assert_eq!(Secded64::encode(data).decode(), DecodeOutcome::Clean(data));
        }
    }

    #[test]
    fn prop_single_flip_corrected() {
        let mut rng = StdRng::seed_from_u64(0x5EC0_0002);
        for _ in 0..256 {
            let data = rng.random::<u64>();
            let bit = rng.random_range(0u32..64);
            let mut cw = Secded64::encode(data);
            cw.flip_data_bit(bit);
            assert_eq!(cw.decode().data(), Some(data), "bit {bit}");
        }
    }

    #[test]
    fn prop_double_flip_detected() {
        let mut rng = StdRng::seed_from_u64(0x5EC0_0003);
        for _ in 0..256 {
            let data = rng.random::<u64>();
            let a = rng.random_range(0u32..64);
            let b = rng.random_range(0u32..64);
            if a == b {
                continue;
            }
            let mut cw = Secded64::encode(data);
            cw.flip_data_bit(a);
            cw.flip_data_bit(b);
            assert_eq!(
                cw.decode(),
                DecodeOutcome::DetectedUncorrectable,
                "bits {a},{b}"
            );
        }
    }

    #[test]
    fn prop_single_flip_corrected_32() {
        let mut rng = StdRng::seed_from_u64(0x5EC0_0004);
        for _ in 0..256 {
            let data = u64::from(rng.random::<u64>() as u32);
            let bit = rng.random_range(0u32..32);
            let mut cw = Secded32::encode(data);
            cw.flip_data_bit(bit);
            assert_eq!(cw.decode().data(), Some(data), "bit {bit}");
        }
    }
}
