//! Analytical reliability models (paper §6.3, following the PARMA
//! model of reference \[22\]).
//!
//! * [`fit`] — SEU rates and FIT arithmetic.
//! * [`mttf`] — mean-time-to-failure models for one-dimensional parity
//!   (fails on the first dirty-data fault), CPPC and SECDED (fail when a
//!   second fault lands in the same protection domain within the mean
//!   dirty-data re-access interval `Tavg`), plus §4.7's
//!   temporal-aliasing model.
//! * [`residency`] — measurement of the model inputs (dirty-data
//!   fraction and `Tavg`, Table 2) from the functional hierarchy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fit;
pub mod montecarlo;
pub mod mttf;
pub mod residency;

pub use fit::SeuRate;
pub use montecarlo::{simulate_double_fault_mttf, MonteCarloConfig, MonteCarloResult};
pub use mttf::{
    mttf_aliasing_years, mttf_domain_double_fault_years, mttf_one_dim_parity_years,
    ReliabilityParams,
};
pub use residency::ResidencyReport;
