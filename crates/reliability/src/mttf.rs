//! MTTF models for the three cache options of Table 3.
//!
//! The models follow §6.3 and the approximate analytical approach of
//! PARMA \[22\]:
//!
//! * **One-dimensional parity** fails on the *first* fault in dirty
//!   data: `MTTF = 1 / (λ_dirty) × 1/AVF` where `λ_dirty` is the fault
//!   rate over the dirty bits.
//! * **CPPC / SECDED** fail when a *second* fault lands in the same
//!   protection domain before the first is corrected, i.e. within the
//!   mean interval `Tavg` between consecutive accesses to the same
//!   dirty word/block. The probability that a given fault is followed
//!   by a domain-mate within `Tavg` is `λ_domain × Tavg`; the expected
//!   number of faults until that happens is its reciprocal:
//!   `MTTF = 1 / (λ_dirty × λ_domain × Tavg) × 1/AVF`.
//!
//!   CPPC's domain is `1/k` of the dirty data for `k` interleaved
//!   parity bits (§6.3: "a CPPC with eight parity bits in effect has
//!   eight protection domains whose size is 1/8 of the entire dirty
//!   data"); SECDED's domain is one word (L1) or one block (L2).
//! * **Temporal aliasing** (§4.7): after a first fault, a CPPC with
//!   byte shifting miscorrects if a second fault hits one of 7 specific
//!   bits (fewer with more register pairs) within `Tavg`.

use crate::fit::{SeuRate, HOURS_PER_YEAR};

/// Inputs shared by all the MTTF models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityParams {
    /// Per-bit SEU rate.
    pub rate: SeuRate,
    /// Architectural vulnerability factor (the paper uses 0.7).
    pub avf: f64,
    /// Total data bits in the cache.
    pub total_bits: f64,
    /// Mean fraction of data that is dirty (Table 2).
    pub dirty_fraction: f64,
    /// Mean cycles between consecutive accesses to the same dirty
    /// word/block (Table 2's `Tavg`).
    pub tavg_cycles: f64,
    /// Core frequency in GHz (Table 1: 3 GHz).
    pub frequency_ghz: f64,
}

impl ReliabilityParams {
    /// The paper's L1 evaluation point (Tables 1–2).
    #[must_use]
    pub fn paper_l1() -> Self {
        ReliabilityParams {
            rate: SeuRate::paper(),
            avf: 0.7,
            total_bits: 32.0 * 1024.0 * 8.0,
            dirty_fraction: 0.16,
            tavg_cycles: 1828.0,
            frequency_ghz: 3.0,
        }
    }

    /// The paper's L2 evaluation point (Tables 1–2).
    #[must_use]
    pub fn paper_l2() -> Self {
        ReliabilityParams {
            rate: SeuRate::paper(),
            avf: 0.7,
            total_bits: 1024.0 * 1024.0 * 8.0,
            dirty_fraction: 0.35,
            tavg_cycles: 378_997.0,
            frequency_ghz: 3.0,
        }
    }

    /// Dirty bits.
    #[must_use]
    pub fn dirty_bits(&self) -> f64 {
        self.total_bits * self.dirty_fraction
    }

    /// Fault rate over the dirty data, per hour.
    #[must_use]
    pub fn dirty_fault_rate_per_hour(&self) -> f64 {
        self.rate.faults_per_hour(self.dirty_bits())
    }

    /// `Tavg` in hours.
    #[must_use]
    pub fn tavg_hours(&self) -> f64 {
        self.tavg_cycles / (self.frequency_ghz * 1e9) / 3600.0
    }
}

fn to_years(hours: f64) -> f64 {
    hours / HOURS_PER_YEAR
}

/// MTTF (years) of a parity-only cache: the first fault in dirty data
/// is fatal.
#[must_use]
pub fn mttf_one_dim_parity_years(p: &ReliabilityParams) -> f64 {
    to_years(1.0 / p.dirty_fault_rate_per_hour() / p.avf)
}

/// MTTF (years) of a scheme whose protection domain holds
/// `domain_bits` of dirty data: failure requires a second fault in the
/// same domain within `Tavg`.
#[must_use]
pub fn mttf_domain_double_fault_years(p: &ReliabilityParams, domain_bits: f64) -> f64 {
    let lambda_domain = p.rate.faults_per_hour(domain_bits);
    let p_double = lambda_domain * p.tavg_hours();
    to_years(1.0 / (p.dirty_fault_rate_per_hour() * p_double) / p.avf)
}

/// MTTF (years) of a CPPC with `parity_ways`-way interleaved parity:
/// the protection domain is `1/parity_ways` of the dirty data (§6.3).
#[must_use]
pub fn mttf_cppc_years(p: &ReliabilityParams, parity_ways: u32) -> f64 {
    mttf_domain_double_fault_years(p, p.dirty_bits() / f64::from(parity_ways))
}

/// MTTF (years) of a SECDED cache whose codeword protects
/// `codeword_data_bits` (64 for word SECDED, block bits at L2).
#[must_use]
pub fn mttf_secded_years(p: &ReliabilityParams, codeword_data_bits: f64) -> f64 {
    mttf_domain_double_fault_years(p, codeword_data_bits)
}

/// MTTF (years) of the §4.7 temporal-aliasing event: after a first
/// fault, a second fault must hit one of `vulnerable_bits` specific
/// bits (7 with one register pair, 3 with two, 1 with four, none with
/// eight) within `Tavg` for the locator to miscorrect.
///
/// Returns `f64::INFINITY` when `vulnerable_bits` is zero (the 8-pair
/// design eliminates the event entirely).
#[must_use]
pub fn mttf_aliasing_years(p: &ReliabilityParams, vulnerable_bits: f64) -> f64 {
    if vulnerable_bits <= 0.0 {
        return f64::INFINITY;
    }
    let p_alias = p.rate.faults_per_hour(vulnerable_bits) * p.tavg_hours();
    to_years(1.0 / (p.dirty_fault_rate_per_hour() * p_alias) / p.avf)
}

/// Vulnerable aliasing bits for a pair count (§4.7's progression
/// 7 → 3 → 1 → 0).
///
/// # Panics
///
/// Panics if `pairs` is not 1, 2, 4 or 8.
#[must_use]
pub fn aliasing_vulnerable_bits(pairs: usize) -> f64 {
    match pairs {
        1 => 7.0,
        2 => 3.0,
        4 => 1.0,
        8 => 0.0,
        _ => panic!("register pairs must be 1, 2, 4 or 8, got {pairs}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within_factor(measured: f64, paper: f64, factor: f64) -> bool {
        measured > paper / factor && measured < paper * factor
    }

    #[test]
    fn table3_one_dim_parity_l1() {
        // Paper: 4490 years.
        let y = mttf_one_dim_parity_years(&ReliabilityParams::paper_l1());
        assert!(within_factor(y, 4490.0, 2.0), "got {y}");
    }

    #[test]
    fn table3_one_dim_parity_l2() {
        // Paper: 64 years.
        let y = mttf_one_dim_parity_years(&ReliabilityParams::paper_l2());
        assert!(within_factor(y, 64.0, 2.0), "got {y}");
    }

    #[test]
    fn table3_cppc_l1() {
        // Paper: 8.02e21 years.
        let y = mttf_cppc_years(&ReliabilityParams::paper_l1(), 8);
        assert!(within_factor(y, 8.02e21, 3.0), "got {y:e}");
    }

    #[test]
    fn table3_cppc_l2() {
        // Paper: 8.07e15 years.
        let y = mttf_cppc_years(&ReliabilityParams::paper_l2(), 8);
        assert!(within_factor(y, 8.07e15, 3.0), "got {y:e}");
    }

    #[test]
    fn table3_secded_l1() {
        // Paper: 6.2e23 years (word SECDED).
        let y = mttf_secded_years(&ReliabilityParams::paper_l1(), 64.0);
        assert!(within_factor(y, 6.2e23, 3.0), "got {y:e}");
    }

    #[test]
    fn table3_secded_l2() {
        // Paper: 1.1e19 years (block SECDED, 32-byte blocks).
        let y = mttf_secded_years(&ReliabilityParams::paper_l2(), 256.0);
        assert!(within_factor(y, 1.1e19, 3.0), "got {y:e}");
    }

    #[test]
    fn section_4_7_aliasing_l2() {
        // Paper: 4.19e20 years with one pair — "5 orders of magnitude
        // larger than DUEs due to temporal 2-bit faults".
        let p = ReliabilityParams::paper_l2();
        let alias = mttf_aliasing_years(&p, aliasing_vulnerable_bits(1));
        assert!(within_factor(alias, 4.19e20, 3.0), "got {alias:e}");
        let due = mttf_cppc_years(&p, 8);
        let orders = (alias / due).log10();
        assert!((4.0..6.0).contains(&orders), "{orders} orders of magnitude");
    }

    #[test]
    fn aliasing_improves_with_pairs() {
        let p = ReliabilityParams::paper_l2();
        let m1 = mttf_aliasing_years(&p, aliasing_vulnerable_bits(1));
        let m2 = mttf_aliasing_years(&p, aliasing_vulnerable_bits(2));
        let m4 = mttf_aliasing_years(&p, aliasing_vulnerable_bits(4));
        let m8 = mttf_aliasing_years(&p, aliasing_vulnerable_bits(8));
        assert!(m1 < m2 && m2 < m4);
        assert!(m8.is_infinite());
    }

    #[test]
    fn ordering_parity_cppc_secded() {
        // Table 3's ordering at both levels: parity ≪ CPPC < SECDED.
        for p in [ReliabilityParams::paper_l1(), ReliabilityParams::paper_l2()] {
            let parity = mttf_one_dim_parity_years(&p);
            let cppc = mttf_cppc_years(&p, 8);
            let secded = mttf_secded_years(&p, 64.0);
            assert!(parity < cppc / 1e10);
            assert!(cppc < secded);
        }
    }

    #[test]
    fn cppc_scales_with_parity_ways() {
        // §3.4: more parity bits per word shrink the domain and raise
        // the MTTF proportionally.
        let p = ReliabilityParams::paper_l1();
        let one = mttf_cppc_years(&p, 1);
        let eight = mttf_cppc_years(&p, 8);
        assert!((eight / one - 8.0).abs() < 1e-6);
    }

    #[test]
    fn l1_more_reliable_than_l2() {
        // Smaller cache + shorter Tavg → much higher MTTF.
        assert!(
            mttf_cppc_years(&ReliabilityParams::paper_l1(), 8)
                > 1e3 * mttf_cppc_years(&ReliabilityParams::paper_l2(), 8)
        );
    }

    #[test]
    #[should_panic(expected = "register pairs must be")]
    fn bad_pairs_panics() {
        let _ = aliasing_vulnerable_bits(3);
    }
}
