//! Monte Carlo validation of the analytical MTTF model.
//!
//! Table 3 is computed from the PARMA-style closed form (see
//! [`crate::mttf`]). This module validates that formula empirically: it
//! simulates the underlying stochastic process — Poisson fault arrivals
//! over the dirty bits, uniformly assigned to protection domains, with
//! failure declared when two faults land in the same domain within the
//! scrubbing window `Tavg` — and estimates the MTTF as the mean time to
//! failure.
//!
//! Real SEU rates (0.001 FIT/bit) produce MTTFs of 10²¹ years, which no
//! simulation can reach directly; instead the validation runs at
//! *accelerated* rates where both the simulation and the formula are
//! tractable, and relies on the model's `1/λ²` scaling to carry the
//! result back — the standard accelerated-testing argument (the paper's
//! own reference \[1\] does physical accelerated testing with neutron
//! beams).
//!
//! Trials run through the [`cppc_campaign`] engine with one RNG stream
//! per trial, so the estimate is bit-identical at any thread count and
//! campaigns can be checkpointed and resumed.

use cppc_campaign::json::Json;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::RngExt;
use cppc_campaign::{Accumulator, CampaignConfig, Persist};

use crate::fit::HOURS_PER_YEAR;

/// Configuration of one accelerated Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Total fault rate over the protected (dirty) bits, per hour.
    pub faults_per_hour: f64,
    /// Number of equal-size protection domains (8 for the paper's CPPC;
    /// `dirty_bits / 64` for word SECDED).
    pub domains: usize,
    /// The vulnerability window: a second fault in the same domain
    /// within this many hours of the first is a failure.
    pub tavg_hours: f64,
    /// Independent trials to average over.
    pub trials: u32,
}

/// The result of a Monte Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Mean time to failure, hours.
    pub mttf_hours: f64,
    /// Standard error of the mean, hours.
    pub std_error_hours: f64,
    /// Mean number of faults absorbed before the failing pair.
    pub mean_faults_to_failure: f64,
}

impl MonteCarloResult {
    /// MTTF in years.
    #[must_use]
    pub fn mttf_years(&self) -> f64 {
        self.mttf_hours / HOURS_PER_YEAR
    }
}

/// One simulated trial: time to failure and faults absorbed on the way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialSample {
    /// Hours until the double-fault failure.
    pub time_hours: f64,
    /// Faults absorbed up to and including the failing one.
    pub faults: u64,
}

/// Running sums of the Monte Carlo estimator — the engine accumulator.
///
/// Sums are accumulated per shard and merged in ascending shard order,
/// which fixes the floating-point summation tree independently of the
/// executing thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonteCarloAccumulator {
    /// Number of trials summed.
    pub n: u64,
    /// Σ time-to-failure (hours).
    pub sum_t: f64,
    /// Σ time-to-failure² (hours²).
    pub sum_t2: f64,
    /// Σ faults absorbed.
    pub total_faults: u64,
}

impl MonteCarloAccumulator {
    /// Folds the sums into the final estimate.
    #[must_use]
    pub fn finish(&self) -> MonteCarloResult {
        let n = self.n as f64;
        let mean = self.sum_t / n;
        // Sum-of-squares variance; tolerable conditioning at the trial
        // counts (≤ 1e6) and spreads (CV ~ 1) this estimator sees.
        let var = (self.sum_t2 - n * mean * mean).max(0.0) / (n - 1.0).max(1.0);
        MonteCarloResult {
            mttf_hours: mean,
            std_error_hours: (var / n).sqrt(),
            mean_faults_to_failure: self.total_faults as f64 / n,
        }
    }
}

impl Accumulator for MonteCarloAccumulator {
    type Item = TrialSample;

    fn record(&mut self, _trial: u64, sample: TrialSample) {
        self.n += 1;
        self.sum_t += sample.time_hours;
        self.sum_t2 += sample.time_hours * sample.time_hours;
        self.total_faults += sample.faults;
    }

    fn merge(&mut self, other: Self) {
        self.n += other.n;
        self.sum_t += other.sum_t;
        self.sum_t2 += other.sum_t2;
        self.total_faults += other.total_faults;
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("Trials", self.n), ("Faults", self.total_faults)]
    }
}

impl Persist for MonteCarloAccumulator {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), Json::UInt(self.n)),
            ("sum_t".into(), Json::from_f64_bits(self.sum_t)),
            ("sum_t2".into(), Json::from_f64_bits(self.sum_t2)),
            ("total_faults".into(), Json::UInt(self.total_faults)),
        ])
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(MonteCarloAccumulator {
            n: value.get("n")?.as_u64()?,
            sum_t: value.get("sum_t")?.as_f64_bits()?,
            sum_t2: value.get("sum_t2")?.as_f64_bits()?,
            total_faults: value.get("total_faults")?.as_u64()?,
        })
    }
}

/// The analytical prediction for the same process (no AVF —
/// this is raw time-to-double-fault): `1 / (λ_total · λ_domain · Tavg)`.
#[must_use]
pub fn analytic_mttf_hours(cfg: &MonteCarloConfig) -> f64 {
    let lambda_domain = cfg.faults_per_hour / cfg.domains as f64;
    1.0 / (cfg.faults_per_hour * lambda_domain * cfg.tavg_hours)
}

/// Simulates one trial of the double-fault process on its own RNG
/// stream. This is the experiment body handed to the campaign engine.
#[must_use]
pub fn simulate_trial(cfg: &MonteCarloConfig, rng: &mut StdRng) -> TrialSample {
    let mut last_fault = Vec::new();
    simulate_trial_into(cfg, rng, &mut last_fault)
}

/// Buffer-reuse form of [`simulate_trial`]: `last_fault` is reset and
/// reused as the per-domain last-arrival table, so a worker thread
/// running millions of trials allocates it once. Draws from `rng` in
/// exactly the same order as [`simulate_trial`].
#[must_use]
pub fn simulate_trial_into(
    cfg: &MonteCarloConfig,
    rng: &mut StdRng,
    last_fault: &mut Vec<f64>,
) -> TrialSample {
    let mut t = 0.0f64;
    last_fault.clear();
    last_fault.resize(cfg.domains, f64::NEG_INFINITY);
    let mut faults = 0u64;
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.random();
        t += -u.max(f64::MIN_POSITIVE).ln() / cfg.faults_per_hour;
        faults += 1;
        let domain = rng.random_range(0..cfg.domains);
        if t - last_fault[domain] < cfg.tavg_hours {
            return TrialSample {
                time_hours: t,
                faults,
            };
        }
        last_fault[domain] = t;
    }
}

fn validate(cfg: &MonteCarloConfig) {
    assert!(cfg.faults_per_hour > 0.0, "rate must be positive");
    assert!(cfg.domains > 0, "need domains");
    assert!(cfg.tavg_hours > 0.0, "window must be positive");
    assert!(cfg.trials > 0, "need trials");
}

/// The engine configuration for this estimation — entry point for
/// checkpointed runs via [`cppc_campaign::run_resumable`].
#[must_use]
pub fn campaign_config(cfg: &MonteCarloConfig, seed: u64) -> CampaignConfig {
    CampaignConfig::new(seed, u64::from(cfg.trials))
}

/// Runs the accelerated simulation on a single thread.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
#[must_use]
pub fn simulate_double_fault_mttf(cfg: &MonteCarloConfig, seed: u64) -> MonteCarloResult {
    simulate_double_fault_mttf_parallel(cfg, seed, 1)
}

/// Runs the accelerated simulation across `threads` workers (0 = all
/// CPUs). Bit-identical to the single-threaded estimate at any thread
/// count.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
#[must_use]
pub fn simulate_double_fault_mttf_parallel(
    cfg: &MonteCarloConfig,
    seed: u64,
    threads: usize,
) -> MonteCarloResult {
    validate(cfg);
    let engine_cfg = campaign_config(cfg, seed).threads(threads);
    std::thread_local! {
        /// Per-worker last-arrival table, reused across every trial the
        /// thread runs (the hot loop is allocation-free in steady state).
        static LAST_FAULT: std::cell::RefCell<Vec<f64>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    cppc_campaign::run::<MonteCarloAccumulator, _>(&engine_cfg, |rng, _trial| {
        LAST_FAULT.with(|scratch| simulate_trial_into(cfg, rng, &mut scratch.borrow_mut()))
    })
    .result
    .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(domains: usize, rate: f64, tavg: f64) -> MonteCarloConfig {
        MonteCarloConfig {
            faults_per_hour: rate,
            domains,
            tavg_hours: tavg,
            trials: 4000,
        }
    }

    #[test]
    fn matches_analytic_model_single_domain() {
        // Keep lambda*Tavg small: the closed form is a first-order
        // approximation, exact only in the rare-event limit.
        let c = cfg(1, 10.0, 0.001);
        let mc = simulate_double_fault_mttf(&c, 1);
        let analytic = analytic_mttf_hours(&c);
        let err = (mc.mttf_hours - analytic).abs() / analytic;
        assert!(
            err < 0.10,
            "MC {} vs analytic {analytic} ({err:.2} rel)",
            mc.mttf_hours
        );
    }

    #[test]
    fn matches_analytic_model_eight_domains() {
        // The CPPC configuration: 8 protection domains.
        let c = cfg(8, 50.0, 0.0005);
        let mc = simulate_double_fault_mttf(&c, 2);
        let analytic = analytic_mttf_hours(&c);
        let err = (mc.mttf_hours - analytic).abs() / analytic;
        assert!(
            err < 0.10,
            "MC {} vs analytic {analytic} ({err:.2} rel)",
            mc.mttf_hours
        );
    }

    #[test]
    fn more_domains_live_longer() {
        // §3.4: splitting the protection domain scales reliability.
        let one = simulate_double_fault_mttf(&cfg(1, 20.0, 0.005), 3);
        let eight = simulate_double_fault_mttf(&cfg(8, 20.0, 0.005), 3);
        let ratio = eight.mttf_hours / one.mttf_hours;
        assert!((6.0..10.5).contains(&ratio), "ratio {ratio} (expected ~8)");
    }

    #[test]
    fn shorter_window_lives_longer() {
        let slow = simulate_double_fault_mttf(&cfg(4, 20.0, 0.01), 4);
        let fast = simulate_double_fault_mttf(&cfg(4, 20.0, 0.001), 4);
        let ratio = fast.mttf_hours / slow.mttf_hours;
        assert!((7.0..13.5).contains(&ratio), "ratio {ratio} (expected ~10)");
    }

    #[test]
    fn inverse_square_rate_scaling() {
        // The accelerated-testing extrapolation law: MTTF ∝ 1/λ².
        let base = simulate_double_fault_mttf(&cfg(4, 10.0, 0.004), 5);
        let double = simulate_double_fault_mttf(&cfg(4, 20.0, 0.004), 5);
        let ratio = base.mttf_hours / double.mttf_hours;
        assert!((3.2..4.9).contains(&ratio), "ratio {ratio} (expected ~4)");
    }

    #[test]
    fn analytic_model_overestimates_outside_rare_event_regime() {
        // Documenting the approximation's limit: at lambda*Tavg ~ 0.1
        // per domain the closed form undershoots the simulated MTTF by
        // several percent — irrelevant at real SEU rates where
        // lambda*Tavg ~ 1e-18.
        let c = cfg(1, 10.0, 0.01);
        let mc = simulate_double_fault_mttf(&c, 1);
        let analytic = analytic_mttf_hours(&c);
        let rel = (mc.mttf_hours - analytic) / analytic;
        assert!((0.0..0.3).contains(&rel), "relative deviation {rel}");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg(2, 30.0, 0.003);
        let a = simulate_double_fault_mttf(&c, 9);
        let b = simulate_double_fault_mttf(&c, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn bit_identical_at_any_thread_count() {
        let c = cfg(4, 25.0, 0.002);
        let one = simulate_double_fault_mttf_parallel(&c, 11, 1);
        for threads in [2, 8] {
            let par = simulate_double_fault_mttf_parallel(&c, 11, threads);
            assert_eq!(one, par, "diverged at {threads} threads");
        }
    }

    #[test]
    fn statistics_are_sane() {
        let r = simulate_double_fault_mttf(&cfg(2, 30.0, 0.003), 10);
        assert!(r.std_error_hours > 0.0);
        assert!(r.std_error_hours < r.mttf_hours);
        assert!(r.mean_faults_to_failure > 1.0);
        assert!(r.mttf_years() < r.mttf_hours);
    }

    #[test]
    fn accumulator_persist_roundtrip() {
        let mut acc = MonteCarloAccumulator::default();
        Accumulator::record(
            &mut acc,
            0,
            TrialSample {
                time_hours: 1.5,
                faults: 3,
            },
        );
        Accumulator::record(
            &mut acc,
            1,
            TrialSample {
                time_hours: 0.25,
                faults: 2,
            },
        );
        let restored = MonteCarloAccumulator::from_json(&acc.to_json()).unwrap();
        assert_eq!(acc, restored);
        assert_eq!(acc.sum_t.to_bits(), restored.sum_t.to_bits());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = simulate_double_fault_mttf(
            &MonteCarloConfig {
                faults_per_hour: 0.0,
                domains: 1,
                tavg_hours: 1.0,
                trials: 1,
            },
            0,
        );
    }
}
