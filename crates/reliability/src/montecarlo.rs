//! Monte Carlo validation of the analytical MTTF model.
//!
//! Table 3 is computed from the PARMA-style closed form (see
//! [`crate::mttf`]). This module validates that formula empirically: it
//! simulates the underlying stochastic process — Poisson fault arrivals
//! over the dirty bits, uniformly assigned to protection domains, with
//! failure declared when two faults land in the same domain within the
//! scrubbing window `Tavg` — and estimates the MTTF as the mean time to
//! failure.
//!
//! Real SEU rates (0.001 FIT/bit) produce MTTFs of 10²¹ years, which no
//! simulation can reach directly; instead the validation runs at
//! *accelerated* rates where both the simulation and the formula are
//! tractable, and relies on the model's `1/λ²` scaling to carry the
//! result back — the standard accelerated-testing argument (the paper's
//! own reference \[1\] does physical accelerated testing with neutron
//! beams).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fit::HOURS_PER_YEAR;

/// Configuration of one accelerated Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Total fault rate over the protected (dirty) bits, per hour.
    pub faults_per_hour: f64,
    /// Number of equal-size protection domains (8 for the paper's CPPC;
    /// `dirty_bits / 64` for word SECDED).
    pub domains: usize,
    /// The vulnerability window: a second fault in the same domain
    /// within this many hours of the first is a failure.
    pub tavg_hours: f64,
    /// Independent trials to average over.
    pub trials: u32,
}

/// The result of a Monte Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Mean time to failure, hours.
    pub mttf_hours: f64,
    /// Standard error of the mean, hours.
    pub std_error_hours: f64,
    /// Mean number of faults absorbed before the failing pair.
    pub mean_faults_to_failure: f64,
}

impl MonteCarloResult {
    /// MTTF in years.
    #[must_use]
    pub fn mttf_years(&self) -> f64 {
        self.mttf_hours / HOURS_PER_YEAR
    }
}

/// The analytical prediction for the same process (no AVF —
/// this is raw time-to-double-fault): `1 / (λ_total · λ_domain · Tavg)`.
#[must_use]
pub fn analytic_mttf_hours(cfg: &MonteCarloConfig) -> f64 {
    let lambda_domain = cfg.faults_per_hour / cfg.domains as f64;
    1.0 / (cfg.faults_per_hour * lambda_domain * cfg.tavg_hours)
}

/// Runs the accelerated simulation.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
#[must_use]
pub fn simulate_double_fault_mttf(cfg: &MonteCarloConfig, seed: u64) -> MonteCarloResult {
    assert!(cfg.faults_per_hour > 0.0, "rate must be positive");
    assert!(cfg.domains > 0, "need domains");
    assert!(cfg.tavg_hours > 0.0, "window must be positive");
    assert!(cfg.trials > 0, "need trials");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut failure_times = Vec::with_capacity(cfg.trials as usize);
    let mut total_faults = 0u64;

    for _ in 0..cfg.trials {
        let mut t = 0.0f64;
        let mut last_fault: Vec<f64> = vec![f64::NEG_INFINITY; cfg.domains];
        let mut faults = 0u64;
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.random();
            t += -u.max(f64::MIN_POSITIVE).ln() / cfg.faults_per_hour;
            faults += 1;
            let domain = rng.random_range(0..cfg.domains);
            if t - last_fault[domain] < cfg.tavg_hours {
                failure_times.push(t);
                total_faults += faults;
                break;
            }
            last_fault[domain] = t;
        }
    }

    let n = failure_times.len() as f64;
    let mean = failure_times.iter().sum::<f64>() / n;
    let var = failure_times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    MonteCarloResult {
        mttf_hours: mean,
        std_error_hours: (var / n).sqrt(),
        mean_faults_to_failure: total_faults as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(domains: usize, rate: f64, tavg: f64) -> MonteCarloConfig {
        MonteCarloConfig {
            faults_per_hour: rate,
            domains,
            tavg_hours: tavg,
            trials: 4000,
        }
    }

    #[test]
    fn matches_analytic_model_single_domain() {
        // Keep lambda*Tavg small: the closed form is a first-order
        // approximation, exact only in the rare-event limit.
        let c = cfg(1, 10.0, 0.001);
        let mc = simulate_double_fault_mttf(&c, 1);
        let analytic = analytic_mttf_hours(&c);
        let err = (mc.mttf_hours - analytic).abs() / analytic;
        assert!(err < 0.10, "MC {} vs analytic {analytic} ({err:.2} rel)", mc.mttf_hours);
    }

    #[test]
    fn matches_analytic_model_eight_domains() {
        // The CPPC configuration: 8 protection domains.
        let c = cfg(8, 50.0, 0.0005);
        let mc = simulate_double_fault_mttf(&c, 2);
        let analytic = analytic_mttf_hours(&c);
        let err = (mc.mttf_hours - analytic).abs() / analytic;
        assert!(err < 0.10, "MC {} vs analytic {analytic} ({err:.2} rel)", mc.mttf_hours);
    }

    #[test]
    fn more_domains_live_longer() {
        // §3.4: splitting the protection domain scales reliability.
        let one = simulate_double_fault_mttf(&cfg(1, 20.0, 0.005), 3);
        let eight = simulate_double_fault_mttf(&cfg(8, 20.0, 0.005), 3);
        let ratio = eight.mttf_hours / one.mttf_hours;
        assert!((6.0..10.5).contains(&ratio), "ratio {ratio} (expected ~8)");
    }

    #[test]
    fn shorter_window_lives_longer() {
        let slow = simulate_double_fault_mttf(&cfg(4, 20.0, 0.01), 4);
        let fast = simulate_double_fault_mttf(&cfg(4, 20.0, 0.001), 4);
        let ratio = fast.mttf_hours / slow.mttf_hours;
        assert!((7.0..13.5).contains(&ratio), "ratio {ratio} (expected ~10)");
    }

    #[test]
    fn inverse_square_rate_scaling() {
        // The accelerated-testing extrapolation law: MTTF ∝ 1/λ².
        let base = simulate_double_fault_mttf(&cfg(4, 10.0, 0.004), 5);
        let double = simulate_double_fault_mttf(&cfg(4, 20.0, 0.004), 5);
        let ratio = base.mttf_hours / double.mttf_hours;
        assert!((3.2..4.9).contains(&ratio), "ratio {ratio} (expected ~4)");
    }

    #[test]
    fn analytic_model_overestimates_outside_rare_event_regime() {
        // Documenting the approximation's limit: at lambda*Tavg ~ 0.1
        // per domain the closed form undershoots the simulated MTTF by
        // several percent — irrelevant at real SEU rates where
        // lambda*Tavg ~ 1e-18.
        let c = cfg(1, 10.0, 0.01);
        let mc = simulate_double_fault_mttf(&c, 1);
        let analytic = analytic_mttf_hours(&c);
        let rel = (mc.mttf_hours - analytic) / analytic;
        assert!((0.0..0.3).contains(&rel), "relative deviation {rel}");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg(2, 30.0, 0.003);
        let a = simulate_double_fault_mttf(&c, 9);
        let b = simulate_double_fault_mttf(&c, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn statistics_are_sane() {
        let r = simulate_double_fault_mttf(&cfg(2, 30.0, 0.003), 10);
        assert!(r.std_error_hours > 0.0);
        assert!(r.std_error_hours < r.mttf_hours);
        assert!(r.mean_faults_to_failure > 1.0);
        assert!(r.mttf_years() < r.mttf_hours);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = simulate_double_fault_mttf(
            &MonteCarloConfig {
                faults_per_hour: 0.0,
                domains: 1,
                tavg_hours: 1.0,
                trials: 1,
            },
            0,
        );
    }
}
