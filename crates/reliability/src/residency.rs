//! Measuring the reliability-model inputs (Table 2) from simulation.

use cppc_cache_sim::hierarchy::TwoLevelHierarchy;

/// Dirty-data residency and re-access interval for one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidencyReport {
    /// Mean fraction of words that are dirty (Table 2 row 1).
    pub dirty_fraction: f64,
    /// Mean cycles between consecutive accesses to the same dirty
    /// word/block (Table 2 row 2), if any dirty data was re-accessed.
    pub tavg_cycles: Option<f64>,
}

/// Extracts Table 2's quantities for both levels of a hierarchy that
/// has already run its trace.
#[must_use]
pub fn measure(hierarchy: &TwoLevelHierarchy) -> (ResidencyReport, ResidencyReport) {
    (
        ResidencyReport {
            dirty_fraction: hierarchy.l1_dirty_fraction(),
            tavg_cycles: hierarchy.l1_tavg(),
        },
        ResidencyReport {
            dirty_fraction: hierarchy.l2_dirty_fraction(),
            tavg_cycles: hierarchy.l2_tavg(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_cache_sim::geometry::CacheGeometry;
    use cppc_cache_sim::hierarchy::MemOp;
    use cppc_cache_sim::replacement::ReplacementPolicy;

    #[test]
    fn measures_after_trace() {
        let l1 = CacheGeometry::new(256, 2, 32).unwrap();
        let l2 = CacheGeometry::new(1024, 2, 32).unwrap();
        let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        h.set_sample_interval(1);
        h.set_cycles_per_op(4);
        h.run([
            MemOp::Store(0x00, 1),
            MemOp::Load(0x40),
            MemOp::Store(0x00, 2), // dirty re-access, interval 8 cycles
        ]);
        let (l1r, _l2r) = measure(&h);
        assert!(l1r.dirty_fraction > 0.0);
        assert_eq!(l1r.tavg_cycles, Some(8.0));
    }

    #[test]
    fn empty_run_has_no_tavg() {
        let l1 = CacheGeometry::new(256, 2, 32).unwrap();
        let l2 = CacheGeometry::new(1024, 2, 32).unwrap();
        let h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        let (l1r, l2r) = measure(&h);
        assert_eq!(l1r.tavg_cycles, None);
        assert_eq!(l2r.tavg_cycles, None);
    }
}
