//! SEU rates and FIT arithmetic.
//!
//! One FIT is one failure per 10⁹ device-hours. The paper assumes an
//! SEU rate of 0.001 FIT per bit (§6.3) — here "failure" means a bit
//! flip, as the paper notes.

/// Hours per (Julian) year, the paper's implied conversion.
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.25;

/// A per-bit single-event-upset rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeuRate {
    fit_per_bit: f64,
}

impl SeuRate {
    /// Creates a rate from FIT per bit.
    ///
    /// # Panics
    ///
    /// Panics if `fit_per_bit` is not positive and finite.
    #[must_use]
    pub fn from_fit_per_bit(fit_per_bit: f64) -> Self {
        assert!(
            fit_per_bit.is_finite() && fit_per_bit > 0.0,
            "SEU rate must be positive"
        );
        SeuRate { fit_per_bit }
    }

    /// The paper's assumed rate: 0.001 FIT/bit (§6.3).
    #[must_use]
    pub fn paper() -> Self {
        SeuRate::from_fit_per_bit(0.001)
    }

    /// FIT per bit.
    #[must_use]
    pub fn fit_per_bit(&self) -> f64 {
        self.fit_per_bit
    }

    /// Expected bit flips per hour over `bits` bits.
    #[must_use]
    pub fn faults_per_hour(&self, bits: f64) -> f64 {
        self.fit_per_bit * bits / 1e9
    }

    /// Expected bit flips per hour for a single bit.
    #[must_use]
    pub fn per_bit_per_hour(&self) -> f64 {
        self.fit_per_bit / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate() {
        assert!((SeuRate::paper().fit_per_bit() - 0.001).abs() < 1e-15);
    }

    #[test]
    fn fit_conversion() {
        // 1e9 bits at 1 FIT/bit = 1 fault per hour.
        let r = SeuRate::from_fit_per_bit(1.0);
        assert!((r.faults_per_hour(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_bit_rate() {
        let r = SeuRate::paper();
        assert!((r.per_bit_per_hour() - 1e-12).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        let _ = SeuRate::from_fit_per_bit(0.0);
    }
}
