//! Cache dimensioning and address-field arithmetic.

use std::fmt;

/// The number of bytes in the machine word every cache in this workspace
/// traffics in (the paper's 64-bit word).
pub const WORD_BYTES: usize = 8;

/// Error returned when cache dimensions are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A size/assoc/block parameter was zero or not a power of two.
    NotPowerOfTwo(&'static str, usize),
    /// `size` is not divisible by `associativity * block_bytes`.
    Indivisible {
        /// Total cache capacity in bytes.
        size: usize,
        /// Number of ways.
        associativity: usize,
        /// Block size in bytes.
        block_bytes: usize,
    },
    /// Block smaller than one 64-bit word.
    BlockTooSmall(usize),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a non-zero power of two, got {v}")
            }
            GeometryError::Indivisible {
                size,
                associativity,
                block_bytes,
            } => write!(
                f,
                "cache size {size} not divisible by associativity {associativity} x block {block_bytes}"
            ),
            GeometryError::BlockTooSmall(b) => {
                write!(f, "block of {b} bytes is smaller than one 8-byte word")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// The dimensions of a cache and the address arithmetic they induce.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::geometry::CacheGeometry;
///
/// // The paper's L1D: 32KB, 2-way, 32-byte lines (Table 1).
/// let geo = CacheGeometry::new(32 * 1024, 2, 32)?;
/// assert_eq!(geo.num_sets(), 512);
/// assert_eq!(geo.words_per_block(), 4);
/// # Ok::<(), cppc_cache_sim::geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: usize,
    associativity: usize,
    block_bytes: usize,
    num_sets: usize,
}

impl CacheGeometry {
    /// Builds a geometry from capacity, associativity and block size.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is zero / not a power of
    /// two, the block is smaller than a word, or the capacity is not an
    /// integral number of sets.
    pub fn new(
        size_bytes: usize,
        associativity: usize,
        block_bytes: usize,
    ) -> Result<Self, GeometryError> {
        for (what, v) in [
            ("size", size_bytes),
            ("associativity", associativity),
            ("block size", block_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(GeometryError::NotPowerOfTwo(what, v));
            }
        }
        if block_bytes < WORD_BYTES {
            return Err(GeometryError::BlockTooSmall(block_bytes));
        }
        let way_bytes = associativity * block_bytes;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(GeometryError::Indivisible {
                size: size_bytes,
                associativity,
                block_bytes,
            });
        }
        Ok(CacheGeometry {
            size_bytes,
            associativity,
            block_bytes,
            num_sets: size_bytes / way_bytes,
        })
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Number of ways per set.
    #[must_use]
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// 64-bit words per block.
    #[must_use]
    pub fn words_per_block(&self) -> usize {
        self.block_bytes / WORD_BYTES
    }

    /// Total 64-bit words in the cache.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.size_bytes / WORD_BYTES
    }

    /// Total data bits in the cache.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.size_bytes as u64 * 8
    }

    /// The block-aligned base address containing `addr`.
    #[must_use]
    pub fn block_base(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes as u64 - 1)
    }

    /// The set index for `addr`.
    #[must_use]
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.block_bytes as u64) % self.num_sets as u64) as usize
    }

    /// The tag for `addr` (address bits above the set index).
    #[must_use]
    pub fn tag(&self, addr: u64) -> u64 {
        addr / self.block_bytes as u64 / self.num_sets as u64
    }

    /// The word offset within the block for `addr`.
    #[must_use]
    pub fn word_index(&self, addr: u64) -> usize {
        ((addr % self.block_bytes as u64) / WORD_BYTES as u64) as usize
    }

    /// The byte offset within the word for `addr`.
    #[must_use]
    pub fn byte_in_word(&self, addr: u64) -> usize {
        (addr % WORD_BYTES as u64) as usize
    }

    /// Reassembles a block base address from a tag and set index.
    #[must_use]
    pub fn address_of(&self, tag: u64, set: usize) -> u64 {
        (tag * self.num_sets as u64 + set as u64) * self.block_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn paper_l1_geometry() {
        let geo = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        assert_eq!(geo.num_sets(), 512);
        assert_eq!(geo.words_per_block(), 4);
        assert_eq!(geo.total_words(), 4096);
        assert_eq!(geo.total_bits(), 32 * 1024 * 8);
    }

    #[test]
    fn paper_l2_geometry() {
        let geo = CacheGeometry::new(1024 * 1024, 4, 32).unwrap();
        assert_eq!(geo.num_sets(), 8192);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheGeometry::new(3000, 2, 32),
            Err(GeometryError::NotPowerOfTwo("size", 3000))
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 3, 32),
            Err(GeometryError::NotPowerOfTwo("associativity", 3))
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 2, 0),
            Err(GeometryError::NotPowerOfTwo("block size", 0))
        ));
    }

    #[test]
    fn rejects_tiny_block() {
        assert!(matches!(
            CacheGeometry::new(4096, 2, 4),
            Err(GeometryError::BlockTooSmall(4))
        ));
    }

    #[test]
    fn field_extraction() {
        let geo = CacheGeometry::new(1024, 2, 32).unwrap(); // 16 sets
        let addr = 0x0000_1234_5678u64;
        assert_eq!(geo.block_base(addr), addr & !31);
        assert_eq!(geo.set_index(addr), ((addr >> 5) & 15) as usize);
        assert_eq!(geo.tag(addr), addr >> 9);
        assert_eq!(geo.word_index(addr), ((addr >> 3) & 3) as usize);
        assert_eq!(geo.byte_in_word(addr), (addr & 7) as usize);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CacheGeometry::new(3000, 2, 32).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn tag_set_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x6E0_0001);
        let geo = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        for _ in 0..512 {
            let addr = rng.random::<u64>();
            let base = geo.block_base(addr);
            let rebuilt = geo.address_of(geo.tag(addr), geo.set_index(addr));
            assert_eq!(base, rebuilt, "addr {addr:#x}");
        }
    }

    #[test]
    fn set_index_in_range() {
        let mut rng = StdRng::seed_from_u64(0x6E0_0002);
        let geo = CacheGeometry::new(1024 * 1024, 4, 32).unwrap();
        for _ in 0..512 {
            let addr = rng.random::<u64>();
            assert!(geo.set_index(addr) < geo.num_sets(), "addr {addr:#x}");
        }
    }
}
