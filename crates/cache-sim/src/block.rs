//! Cache blocks holding real data words with per-word dirty bits.

/// One cache block: tag, validity, the actual 64-bit data words, and a
/// per-word dirty bitmap.
///
/// An L1 CPPC "keeps one dirty bit per word in the cache tag array"
/// (paper §3), so dirty state is tracked per word here rather than per
/// block; block-level dirtiness is derived (`is_dirty`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheBlock {
    tag: u64,
    valid: bool,
    words: Vec<u64>,
    dirty: u64,
}

impl CacheBlock {
    /// Creates an invalid block with room for `words_per_block` words.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_block` is zero or greater than 64 (the dirty
    /// bitmap is a `u64`).
    #[must_use]
    pub fn invalid(words_per_block: usize) -> Self {
        assert!(
            (1..=64).contains(&words_per_block),
            "words per block must be in 1..=64, got {words_per_block}"
        );
        CacheBlock {
            tag: 0,
            valid: false,
            words: vec![0; words_per_block],
            dirty: 0,
        }
    }

    /// `true` if this way holds a valid block.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The tag of the resident block (meaningless when invalid).
    #[must_use]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `true` if any word of the block is dirty.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty != 0
    }

    /// The per-word dirty bitmap (bit `i` set ⇔ word `i` dirty).
    #[must_use]
    pub fn dirty_mask(&self) -> u64 {
        self.dirty
    }

    /// `true` if word `w` is dirty.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn is_word_dirty(&self, w: usize) -> bool {
        assert!(w < self.words.len(), "word {w} out of range");
        self.dirty >> w & 1 == 1
    }

    /// Number of dirty words.
    #[must_use]
    pub fn dirty_word_count(&self) -> u32 {
        self.dirty.count_ones()
    }

    /// The data words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Fills the block with `data` under `tag`, marking it valid & clean.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the block's word count.
    pub fn fill(&mut self, tag: u64, data: &[u64]) {
        assert_eq!(data.len(), self.words.len(), "fill width mismatch");
        self.tag = tag;
        self.valid = true;
        self.dirty = 0;
        self.words.copy_from_slice(data);
    }

    /// Writes word `w`, marks it dirty, and returns `(old_value,
    /// was_already_dirty)` — the two facts the CPPC write path needs
    /// (old data is XORed into R2 only when the word was already dirty).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn store_word(&mut self, w: usize, value: u64) -> (u64, bool) {
        let old = self.words[w];
        let was_dirty = self.is_word_dirty(w);
        self.words[w] = value;
        self.dirty |= 1 << w;
        (old, was_dirty)
    }

    /// Writes a single byte inside word `w` (a partial store), marks the
    /// word dirty, and returns `(old_word, was_already_dirty)`.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `byte` is out of range.
    pub fn store_byte(&mut self, w: usize, byte: usize, value: u8) -> (u64, bool) {
        assert!(byte < 8, "byte {byte} out of range");
        let old = self.words[w];
        let was_dirty = self.is_word_dirty(w);
        let shift = 8 * byte as u32;
        self.words[w] = (old & !(0xFFu64 << shift)) | (u64::from(value) << shift);
        self.dirty |= 1 << w;
        (old, was_dirty)
    }

    /// Overwrites word `w` *without* touching the dirty bit — used by
    /// recovery to write corrected data back in place.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn patch_word(&mut self, w: usize, value: u64) {
        self.words[w] = value;
    }

    /// Clears all dirty bits (after a write-back made memory consistent).
    pub fn clean(&mut self) {
        self.dirty = 0;
    }

    /// Invalidates the block.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.dirty = 0;
    }

    /// Flips bit `bit` of word `w` — fault injection's entry point into
    /// the data array.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `bit` is out of range.
    pub fn flip_bit(&mut self, w: usize, bit: u32) {
        assert!(bit < 64, "bit {bit} out of range");
        assert!(w < self.words.len(), "word {w} out of range");
        self.words[w] ^= 1u64 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_block_starts_clean() {
        let b = CacheBlock::invalid(4);
        assert!(!b.is_valid());
        assert!(!b.is_dirty());
        assert_eq!(b.dirty_word_count(), 0);
    }

    #[test]
    fn fill_makes_valid_clean() {
        let mut b = CacheBlock::invalid(4);
        b.fill(7, &[1, 2, 3, 4]);
        assert!(b.is_valid());
        assert!(!b.is_dirty());
        assert_eq!(b.tag(), 7);
        assert_eq!(b.words(), &[1, 2, 3, 4]);
    }

    #[test]
    fn store_word_reports_old_and_dirty_state() {
        let mut b = CacheBlock::invalid(2);
        b.fill(0, &[10, 20]);
        let (old, was_dirty) = b.store_word(1, 99);
        assert_eq!((old, was_dirty), (20, false));
        let (old, was_dirty) = b.store_word(1, 100);
        assert_eq!((old, was_dirty), (99, true));
        assert!(b.is_word_dirty(1));
        assert!(!b.is_word_dirty(0));
        assert_eq!(b.dirty_mask(), 0b10);
    }

    #[test]
    fn store_byte_patches_correct_lane() {
        let mut b = CacheBlock::invalid(1);
        b.fill(0, &[0x1111_2222_3333_4444]);
        let (old, dirty) = b.store_byte(0, 2, 0xAB);
        assert_eq!(old, 0x1111_2222_3333_4444);
        assert!(!dirty);
        assert_eq!(b.word(0), 0x1111_2222_33AB_4444);
        assert!(b.is_word_dirty(0));
    }

    #[test]
    fn patch_word_preserves_dirty_bits() {
        let mut b = CacheBlock::invalid(2);
        b.fill(0, &[0, 0]);
        b.store_word(0, 5);
        b.patch_word(0, 6);
        assert_eq!(b.word(0), 6);
        assert!(b.is_word_dirty(0));
        b.patch_word(1, 9);
        assert!(!b.is_word_dirty(1), "patch must not set dirty");
    }

    #[test]
    fn clean_clears_all_dirty() {
        let mut b = CacheBlock::invalid(4);
        b.fill(0, &[0; 4]);
        b.store_word(0, 1);
        b.store_word(3, 1);
        b.clean();
        assert!(!b.is_dirty());
    }

    #[test]
    fn flip_bit_corrupts_exactly_one_bit() {
        let mut b = CacheBlock::invalid(2);
        b.fill(0, &[0, 0]);
        b.flip_bit(1, 63);
        assert_eq!(b.word(1), 1u64 << 63);
        assert_eq!(b.word(0), 0);
    }

    #[test]
    fn invalidate_resets() {
        let mut b = CacheBlock::invalid(1);
        b.fill(3, &[42]);
        b.store_word(0, 43);
        b.invalidate();
        assert!(!b.is_valid());
        assert!(!b.is_dirty());
    }

    #[test]
    #[should_panic(expected = "words per block")]
    fn zero_words_panics() {
        let _ = CacheBlock::invalid(0);
    }

    #[test]
    #[should_panic(expected = "fill width mismatch")]
    fn fill_wrong_width_panics() {
        CacheBlock::invalid(2).fill(0, &[1]);
    }
}
