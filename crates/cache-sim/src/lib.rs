//! Bit-accurate set-associative cache simulator substrate.
//!
//! This crate provides the memory-hierarchy machinery everything else in
//! the CPPC reproduction builds on:
//!
//! * [`geometry`] — cache dimensioning and address field extraction.
//! * [`block`] — cache blocks holding *real data* (64-bit words) with
//!   per-word dirty bits, exactly as an L1 CPPC requires (paper §3).
//! * [`replacement`] — LRU / FIFO / seeded-random replacement policies.
//! * [`cache`] — a write-back, write-allocate set-associative cache with
//!   full event statistics, plus primitives (probe / fill / direct word
//!   access) that the protected-cache implementations compose.
//! * [`memory`] — a sparse backing store, the authoritative copy that
//!   clean-data recovery re-fetches from.
//! * [`hierarchy`] — a two-level (L1 + L2 + memory) functional simulator
//!   producing the operation counts that drive the paper's energy and
//!   performance models (read hits, write hits, stores-to-dirty,
//!   misses, write-backs at both levels).
//! * [`snapshot`] — warm-state capture/restore, so fault-injection
//!   campaigns replay the warmup prefix once and restore it per trial.
//! * [`stats`] — counter bundles shared by all of the above.
//!
//! # Example
//!
//! ```
//! use cppc_cache_sim::geometry::CacheGeometry;
//! use cppc_cache_sim::cache::Cache;
//! use cppc_cache_sim::memory::MainMemory;
//! use cppc_cache_sim::replacement::ReplacementPolicy;
//!
//! let geo = CacheGeometry::new(32 * 1024, 2, 32)?;
//! let mut mem = MainMemory::new();
//! let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
//! cache.store_word(0x1000, 0xDEAD_BEEF, &mut mem);
//! assert_eq!(cache.load_word(0x1000, &mut mem), 0xDEAD_BEEF);
//! # Ok::<(), cppc_cache_sim::geometry::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod block;
pub mod cache;
pub mod geometry;
pub mod hierarchy;
pub mod hierarchy3;
pub mod memory;
pub mod obs;
pub mod replacement;
pub mod snapshot;
pub mod stats;
pub mod victim;
pub mod write_through;

pub use batch::OpBatch;
pub use block::CacheBlock;
pub use cache::Cache;
pub use geometry::{CacheGeometry, GeometryError};
pub use hierarchy::TwoLevelHierarchy;
pub use hierarchy3::ThreeLevelHierarchy;
pub use memory::MainMemory;
pub use replacement::ReplacementPolicy;
pub use snapshot::{CacheSnapshot, MemorySnapshot};
pub use stats::CacheStats;
pub use victim::{VictimBuffer, VictimSnapshot};
pub use write_through::WriteThroughCache;
