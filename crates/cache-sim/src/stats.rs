//! Access-event counters.
//!
//! These counters are exactly the quantities the paper's evaluation needs:
//! read/write hits (energy per access), stores to already-dirty words
//! (CPPC's read-before-write events), misses and write-backs (traffic to
//! the next level), and dirty-residency sampling (Table 2).

/// Counter bundle maintained by every cache in the workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load (read) accesses that hit.
    pub load_hits: u64,
    /// Load accesses that missed.
    pub load_misses: u64,
    /// Store (write) accesses that hit.
    pub store_hits: u64,
    /// Store accesses that missed (write-allocate: these also fill).
    pub store_misses: u64,
    /// Stores whose target word was already dirty — each of these is a
    /// read-before-write in a CPPC (paper §3.1).
    pub stores_to_dirty: u64,
    /// Dirty blocks written back to the next level.
    pub writebacks: u64,
    /// Dirty *words* written back (sum of dirty-mask popcounts).
    pub writeback_words: u64,
    /// Clean blocks silently evicted.
    pub clean_evictions: u64,
    /// Blocks filled from the next level.
    pub fills: u64,
    /// Running sum of `dirty_words` samples (for averaging).
    pub dirty_word_samples_sum: u64,
    /// Number of dirty-residency samples taken.
    pub dirty_word_samples: u64,
}

impl CacheStats {
    /// Total loads.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.load_hits + self.load_misses
    }

    /// Total stores.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.store_hits + self.store_misses
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.loads() + self.stores()
    }

    /// Total misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    /// Miss rate over all accesses (0 when there were no accesses).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.misses() as f64 / acc as f64
        }
    }

    /// Records a dirty-residency sample of `dirty_words` (out of
    /// `total_words`, which the caller tracks).
    pub fn sample_dirty(&mut self, dirty_words: u64) {
        self.dirty_word_samples_sum += dirty_words;
        self.dirty_word_samples += 1;
    }

    /// Mean number of dirty words across all samples.
    #[must_use]
    pub fn mean_dirty_words(&self) -> f64 {
        if self.dirty_word_samples == 0 {
            0.0
        } else {
            self.dirty_word_samples_sum as f64 / self.dirty_word_samples as f64
        }
    }

    /// Merges another counter bundle into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.load_hits += other.load_hits;
        self.load_misses += other.load_misses;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.stores_to_dirty += other.stores_to_dirty;
        self.writebacks += other.writebacks;
        self.writeback_words += other.writeback_words;
        self.clean_evictions += other.clean_evictions;
        self.fills += other.fills;
        self.dirty_word_samples_sum += other.dirty_word_samples_sum;
        self.dirty_word_samples += other.dirty_word_samples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_totals() {
        let s = CacheStats {
            load_hits: 90,
            load_misses: 10,
            store_hits: 45,
            store_misses: 5,
            ..CacheStats::default()
        };
        assert_eq!(s.loads(), 100);
        assert_eq!(s.stores(), 50);
        assert_eq!(s.accesses(), 150);
        assert_eq!(s.misses(), 15);
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_zero_when_idle() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn dirty_sampling_averages() {
        let mut s = CacheStats::default();
        s.sample_dirty(10);
        s.sample_dirty(20);
        assert!((s.mean_dirty_words() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mean_dirty_zero_without_samples() {
        assert_eq!(CacheStats::default().mean_dirty_words(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            load_hits: 1,
            writebacks: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            load_hits: 3,
            stores_to_dirty: 4,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.load_hits, 4);
        assert_eq!(a.writebacks, 2);
        assert_eq!(a.stores_to_dirty, 4);
    }
}
