//! Write-through cache.
//!
//! The paper's §1 framing: parity alone *is* sufficient for a
//! write-through L1, because every datum has an up-to-date copy below —
//! a detected fault is always recoverable by re-fetch. The cost is that
//! every store propagates to the next level immediately, which is why
//! "most caches today are write-back caches" and why write-back needs
//! real correction. This type provides that comparison point.

use crate::cache::{Backing, Cache};
use crate::geometry::CacheGeometry;
use crate::memory::MainMemory;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// A write-through, write-allocate cache. Contents are never dirty;
/// every store is forwarded to the backing store immediately.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::write_through::WriteThroughCache;
/// use cppc_cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
///
/// let geo = CacheGeometry::new(1024, 2, 32)?;
/// let mut mem = MainMemory::new();
/// let mut c = WriteThroughCache::new(geo, ReplacementPolicy::Lru);
/// c.store_word(0x40, 7, &mut mem);
/// assert_eq!(mem.peek_word(0x40), 7, "store reached memory immediately");
/// # Ok::<(), cppc_cache_sim::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WriteThroughCache {
    inner: Cache,
    store_traffic: u64,
    /// One-block scratch reused for every write-through transfer, so the
    /// per-store path allocates nothing.
    store_scratch: Vec<u64>,
}

impl WriteThroughCache {
    /// Creates an empty write-through cache.
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        WriteThroughCache {
            inner: Cache::new(geo, policy),
            store_traffic: 0,
            store_scratch: vec![0; geo.words_per_block()],
        }
    }

    /// Generic statistics (no write-backs will ever appear; stores to
    /// the next level are counted by [`WriteThroughCache::store_traffic`]).
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Next-level write accesses caused by stores — the scheme's energy
    /// burden.
    #[must_use]
    pub fn store_traffic(&self) -> u64 {
        self.store_traffic
    }

    /// The geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        self.inner.geometry()
    }

    /// Loads a word, filling on a miss.
    pub fn load_word<B: Backing>(&mut self, addr: u64, backing: &mut B) -> u64 {
        self.inner.load_word(addr, backing)
    }

    /// Stores a word: updates the cached copy (if resident or after a
    /// write-allocate fill) and writes through to `backing`.
    pub fn store_word<B: Backing>(&mut self, addr: u64, value: u64, backing: &mut B) {
        let (set, way) = match self.inner.probe(addr) {
            Some(hit) => {
                self.inner.record_access(true, true);
                hit
            }
            None => {
                self.inner.record_access(true, false);
                let set = self.inner.geometry().set_index(addr);
                let way = self.inner.choose_way_for_fill(set);
                let _ = self.inner.fill_into(addr, way, backing);
                (set, way)
            }
        };
        let w = self.inner.geometry().word_index(addr);
        // Patch (not store): the cached copy never turns dirty.
        self.inner.block_mut(set, way).patch_word(w, value);
        self.inner.touch(set, way);
        let base = self.inner.geometry().block_base(addr);
        self.store_scratch[w] = value;
        backing.write_back(base, &self.store_scratch, 1 << w);
        self.store_traffic += 1;
    }

    /// Stores one byte, writing the merged word through.
    pub fn store_byte<B: Backing>(&mut self, addr: u64, value: u8, backing: &mut B) {
        let (set, way) = match self.inner.probe(addr) {
            Some(hit) => {
                self.inner.record_access(true, true);
                hit
            }
            None => {
                self.inner.record_access(true, false);
                let set = self.inner.geometry().set_index(addr);
                let way = self.inner.choose_way_for_fill(set);
                let _ = self.inner.fill_into(addr, way, backing);
                (set, way)
            }
        };
        let w = self.inner.geometry().word_index(addr);
        let byte = self.inner.geometry().byte_in_word(addr);
        let old = self.inner.block(set, way).word(w);
        let shift = 8 * byte as u32;
        let merged = (old & !(0xFFu64 << shift)) | (u64::from(value) << shift);
        self.inner.block_mut(set, way).patch_word(w, merged);
        self.inner.touch(set, way);
        let base = self.inner.geometry().block_base(addr);
        self.store_scratch[w] = merged;
        backing.write_back(base, &self.store_scratch, 1 << w);
        self.store_traffic += 1;
    }

    /// Number of dirty words — always zero, by construction.
    #[must_use]
    pub fn dirty_word_count(&self) -> u64 {
        self.inner.dirty_word_count()
    }

    /// Reads a resident word without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    /// Simulates fault recovery for a detected parity error: since no
    /// word is ever dirty, the word is simply re-fetched. (Provided for
    /// parity — pun intended — with the protected write-back caches.)
    pub fn refetch_word(&mut self, addr: u64, mem: &mut MainMemory) -> Option<u64> {
        let (set, way) = self.inner.probe(addr)?;
        let w = self.inner.geometry().word_index(addr);
        let value = mem.peek_word(addr);
        self.inner.block_mut(set, way).patch_word(w, value);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    fn build() -> (WriteThroughCache, MainMemory) {
        (
            WriteThroughCache::new(
                CacheGeometry::new(512, 2, 32).unwrap(),
                ReplacementPolicy::Lru,
            ),
            MainMemory::new(),
        )
    }

    #[test]
    fn stores_reach_memory_immediately() {
        let (mut c, mut m) = build();
        c.store_word(0x40, 7, &mut m);
        assert_eq!(m.peek_word(0x40), 7);
        assert_eq!(c.load_word(0x40, &mut m), 7);
        assert_eq!(c.store_traffic(), 1);
    }

    #[test]
    fn never_dirty() {
        let (mut c, mut m) = build();
        for i in 0..100u64 {
            c.store_word(i * 8, i, &mut m);
        }
        assert_eq!(c.dirty_word_count(), 0);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn every_store_is_traffic() {
        let (mut c, mut m) = build();
        for _ in 0..50 {
            c.store_word(0x40, 1, &mut m); // same word, still traffic
        }
        assert_eq!(c.store_traffic(), 50);
    }

    #[test]
    fn fault_recovery_is_trivially_refetch() {
        let (mut c, mut m) = build();
        c.store_word(0x40, 0xAB, &mut m);
        // corrupt the cached copy
        let (set, way) = c.inner.probe(0x40).unwrap();
        c.inner.block_mut(set, way).flip_bit(0, 3);
        assert_eq!(c.refetch_word(0x40, &mut m), Some(0xAB));
        assert_eq!(c.load_word(0x40, &mut m), 0xAB);
    }

    #[test]
    fn transparency_oracle() {
        let (mut c, mut m) = build();
        let mut rng = StdRng::seed_from_u64(5);
        let mut oracle = std::collections::HashMap::new();
        for _ in 0..10_000 {
            let addr = (rng.random_range(0..4096u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                c.store_word(addr, v, &mut m);
                oracle.insert(addr, v);
                // Memory is always current — the write-through property.
                assert_eq!(m.peek_word(addr), v);
            } else {
                assert_eq!(c.load_word(addr, &mut m), *oracle.get(&addr).unwrap_or(&0));
            }
        }
    }
}
