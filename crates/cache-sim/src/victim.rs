//! Victim buffer.
//!
//! Write-back caches typically stage evicted dirty blocks in a small
//! FIFO victim buffer and drain them to the next level in the
//! background (paper §3.1 — this is why XORing evicted dirty words into
//! R2 is off the critical path). The buffer also services hits on
//! recently evicted blocks, avoiding a round trip to the next level.

use crate::cache::Backing;

/// One staged write-back.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    base: u64,
    words: Vec<u64>,
    dirty_mask: u64,
}

/// A FIFO victim buffer of bounded capacity, interposed between a cache
/// and its backing store.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::victim::VictimBuffer;
/// use cppc_cache_sim::memory::MainMemory;
///
/// let mut mem = MainMemory::new();
/// let mut vb = VictimBuffer::new(4);
/// vb.push(0x40, &[1, 2, 3, 4], 0b1111, &mut mem);
/// assert_eq!(vb.lookup(0x40), Some(&[1u64, 2, 3, 4][..]));
/// vb.drain_all(&mut mem);
/// assert_eq!(mem.peek_word(0x40), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VictimBuffer {
    entries: Vec<Entry>,
    /// Word buffers recycled from drained entries, so steady-state
    /// push/drain cycles allocate nothing.
    pool: Vec<Vec<u64>>,
    capacity: usize,
    hits: u64,
    drains: u64,
}

impl VictimBuffer {
    /// Creates a buffer holding up to `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim buffer needs capacity");
        VictimBuffer {
            entries: Vec::with_capacity(capacity),
            pool: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            drains: 0,
        }
    }

    /// Number of blocks currently staged.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits serviced from the buffer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Blocks drained to the next level.
    #[must_use]
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Stages an evicted block (the data is copied out of `words`, which
    /// can therefore borrow the evicting cache's storage arena). If the
    /// buffer is full, the oldest entry is drained to `backing` first
    /// (the foreground stall a deeper buffer avoids).
    pub fn push<B: Backing>(&mut self, base: u64, words: &[u64], dirty_mask: u64, backing: &mut B) {
        if let Some(pos) = self.entries.iter().position(|e| e.base == base) {
            // Same block evicted again before draining: coalesce, and
            // refresh the entry's FIFO position.
            let mut merged = self.entries.remove(pos);
            // Words dirty only in the old copy keep the old data.
            for (w, &value) in words.iter().enumerate() {
                if merged.dirty_mask >> w & 1 == 0 || dirty_mask >> w & 1 == 1 {
                    merged.words[w] = value;
                }
            }
            merged.dirty_mask |= dirty_mask;
            self.entries.push(merged);
            return;
        }
        if self.entries.len() == self.capacity {
            let oldest = self.entries.remove(0);
            if oldest.dirty_mask != 0 {
                backing.write_back(oldest.base, &oldest.words, oldest.dirty_mask);
            }
            self.pool.push(oldest.words);
            self.drains += 1;
        }
        let mut staged = self.pool.pop().unwrap_or_default();
        staged.resize(words.len(), 0);
        staged.copy_from_slice(words);
        self.entries.push(Entry {
            base,
            words: staged,
            dirty_mask,
        });
    }

    /// Checks whether the block at `base` is staged, returning its data
    /// (a victim-buffer hit).
    pub fn lookup(&mut self, base: u64) -> Option<&[u64]> {
        let found = self.entries.iter().position(|e| e.base == base)?;
        self.hits += 1;
        Some(&self.entries[found].words)
    }

    /// Removes and returns the staged block at `base` (for re-filling it
    /// into the cache without a next-level access).
    pub fn take(&mut self, base: u64) -> Option<(Vec<u64>, u64)> {
        let pos = self.entries.iter().position(|e| e.base == base)?;
        let e = self.entries.remove(pos);
        self.hits += 1;
        Some((e.words, e.dirty_mask))
    }

    /// Drains one entry (background write-back slot). Returns `true` if
    /// something was drained.
    pub fn drain_one<B: Backing>(&mut self, backing: &mut B) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let e = self.entries.remove(0);
        if e.dirty_mask != 0 {
            backing.write_back(e.base, &e.words, e.dirty_mask);
        }
        self.pool.push(e.words);
        self.drains += 1;
        true
    }

    /// Drains everything.
    pub fn drain_all<B: Backing>(&mut self, backing: &mut B) {
        while self.drain_one(backing) {}
    }

    /// Captures the staged entries and counters into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> VictimSnapshot {
        VictimSnapshot {
            entries: self.entries.clone(),
            capacity: self.capacity,
            hits: self.hits,
            drains: self.drains,
        }
    }

    /// Restores the state captured by [`VictimBuffer::snapshot`].
    /// Word buffers are recycled through the internal pool, so restoring
    /// a steady-state shape allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a buffer of different capacity.
    pub fn restore_snapshot(&mut self, snap: &VictimSnapshot) {
        assert_eq!(
            self.capacity, snap.capacity,
            "snapshot from a different victim-buffer capacity"
        );
        while self.entries.len() > snap.entries.len() {
            let e = self.entries.pop().expect("len checked");
            self.pool.push(e.words);
        }
        for (dst, src) in self.entries.iter_mut().zip(&snap.entries) {
            dst.base = src.base;
            dst.dirty_mask = src.dirty_mask;
            dst.words.clear();
            dst.words.extend_from_slice(&src.words);
        }
        while self.entries.len() < snap.entries.len() {
            let src = &snap.entries[self.entries.len()];
            let mut words = self.pool.pop().unwrap_or_default();
            words.clear();
            words.extend_from_slice(&src.words);
            self.entries.push(Entry {
                base: src.base,
                words,
                dirty_mask: src.dirty_mask,
            });
        }
        self.hits = snap.hits;
        self.drains = snap.drains;
    }
}

/// Saved state of a [`VictimBuffer`], produced by
/// [`VictimBuffer::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VictimSnapshot {
    entries: Vec<Entry>,
    capacity: usize,
    hits: u64,
    drains: u64,
}

impl VictimSnapshot {
    /// Approximate heap bytes held by this snapshot.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| 24 + e.words.len() as u64 * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MainMemory;

    #[test]
    fn push_lookup_take() {
        let mut mem = MainMemory::new();
        let mut vb = VictimBuffer::new(2);
        vb.push(0x40, &[1, 2, 3, 4], 0b1111, &mut mem);
        assert_eq!(vb.lookup(0x40), Some(&[1u64, 2, 3, 4][..]));
        assert_eq!(vb.lookup(0x80), None);
        let (words, mask) = vb.take(0x40).unwrap();
        assert_eq!(words, vec![1, 2, 3, 4]);
        assert_eq!(mask, 0b1111);
        assert!(vb.is_empty());
        assert_eq!(vb.hits(), 2);
    }

    #[test]
    fn overflow_drains_oldest() {
        let mut mem = MainMemory::new();
        let mut vb = VictimBuffer::new(2);
        vb.push(0x00, &[9, 0, 0, 0], 0b0001, &mut mem);
        vb.push(0x20, &[8, 0, 0, 0], 0b0001, &mut mem);
        vb.push(0x40, &[7, 0, 0, 0], 0b0001, &mut mem);
        assert_eq!(vb.len(), 2);
        assert_eq!(mem.peek_word(0x00), 9, "oldest drained");
        assert_eq!(mem.peek_word(0x20), 0, "newer still staged");
        assert_eq!(vb.drains(), 1);
    }

    #[test]
    fn clean_entries_drain_silently() {
        let mut mem = MainMemory::new();
        let mut vb = VictimBuffer::new(1);
        vb.push(0x00, &[5, 5, 5, 5], 0, &mut mem);
        vb.drain_all(&mut mem);
        assert_eq!(mem.peek_word(0x00), 0, "clean block never written");
        assert_eq!(mem.writes(), 0);
    }

    #[test]
    fn coalesces_re_eviction() {
        let mut mem = MainMemory::new();
        let mut vb = VictimBuffer::new(4);
        vb.push(0x40, &[1, 0, 0, 0], 0b0001, &mut mem);
        // Same block evicted again with a different dirty word.
        vb.push(0x40, &[0, 2, 0, 0], 0b0010, &mut mem);
        assert_eq!(vb.len(), 1);
        vb.drain_all(&mut mem);
        assert_eq!(mem.peek_word(0x40), 1, "old dirty word kept");
        assert_eq!(mem.peek_word(0x48), 2, "new dirty word kept");
    }

    #[test]
    fn drain_one_is_fifo() {
        let mut mem = MainMemory::new();
        let mut vb = VictimBuffer::new(3);
        vb.push(0x00, &[1, 0, 0, 0], 1, &mut mem);
        vb.push(0x20, &[2, 0, 0, 0], 1, &mut mem);
        assert!(vb.drain_one(&mut mem));
        assert_eq!(mem.peek_word(0x00), 1);
        assert_eq!(mem.peek_word(0x20), 0);
        assert!(vb.drain_one(&mut mem));
        assert!(!vb.drain_one(&mut mem));
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        let _ = VictimBuffer::new(0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut mem = MainMemory::new();
        let mut vb = VictimBuffer::new(3);
        vb.push(0x00, &[1, 0, 0, 0], 0b0001, &mut mem);
        vb.push(0x20, &[2, 9, 0, 0], 0b0011, &mut mem);
        let snap = vb.snapshot();
        // Mutate past the snapshot: drain one, push another.
        vb.drain_one(&mut mem);
        vb.push(0x40, &[7, 0, 0, 0], 0b0001, &mut mem);
        vb.restore_snapshot(&snap);
        assert_eq!(vb.len(), 2);
        assert_eq!(vb.drains(), 0);
        assert_eq!(vb.lookup(0x00), Some(&[1u64, 0, 0, 0][..]));
        assert_eq!(vb.lookup(0x20), Some(&[2u64, 9, 0, 0][..]));
        assert_eq!(vb.lookup(0x40), None);
        assert!(snap.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "different victim-buffer capacity")]
    fn restore_rejects_capacity_mismatch() {
        let vb = VictimBuffer::new(2);
        let snap = vb.snapshot();
        VictimBuffer::new(3).restore_snapshot(&snap);
    }
}
