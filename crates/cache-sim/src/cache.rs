//! The write-back, write-allocate set-associative cache.
//!
//! Storage is a struct-of-arrays arena: one contiguous `tags` / `valid`
//! / `dirty` vector each, indexed by `set * associativity + way`, plus a
//! single flat `words` buffer holding every block's data back to back.
//! Fills fetch straight into the arena slot via
//! [`Backing::fetch_block_into`] and evictions write back straight out
//! of it, so the steady-state access path performs no heap allocation.

use crate::geometry::{CacheGeometry, WORD_BYTES};
use crate::memory::MainMemory;
use crate::replacement::{ReplacementPolicy, SetReplacementState};
use crate::snapshot::CacheSnapshot;
use crate::stats::CacheStats;

/// Anything that can stand below a cache: the next cache level or main
/// memory. Fetches fill caller-provided buffers (the cache passes its
/// own arena slot, so no transfer allocation happens); write-backs carry
/// the dirty mask so only modified words propagate.
pub trait Backing {
    /// Fills `buf` with the block of `buf.len()` 64-bit words at
    /// block-aligned `base`.
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]);

    /// Allocating convenience wrapper around
    /// [`Backing::fetch_block_into`] for cold paths (fault-recovery
    /// re-fetches); the hot path never calls it.
    fn fetch_block(&mut self, base: u64, words: usize) -> Vec<u64> {
        let mut buf = vec![0u64; words];
        self.fetch_block_into(base, &mut buf);
        buf
    }

    /// Accepts a write-back of the dirty words of the block at `base`
    /// (`dirty_mask` bit `i` set ⇔ `data[i]` is dirty).
    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64);
}

impl Backing for MainMemory {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        self.read_block_into(base, buf);
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        self.write_back_dirty(base, data, dirty_mask);
    }
}

/// A block evicted by a fill, handed back so protected caches can update
/// their bookkeeping. The data words are not carried: protected caches
/// (e.g. CPPC, which XORs evicted dirty words into R2) process the
/// outgoing block *before* triggering the fill, while it is still
/// resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block base address of the evicted block.
    pub base: u64,
    /// Per-word dirty mask at eviction time.
    pub dirty_mask: u64,
}

/// A read-only view of one block in the storage arena. Mirrors the
/// accessor API of [`CacheBlock`](crate::block::CacheBlock).
#[derive(Debug, Clone, Copy)]
pub struct BlockRef<'a> {
    tag: u64,
    valid: bool,
    dirty: u64,
    words: &'a [u64],
}

impl<'a> BlockRef<'a> {
    /// `true` if this way holds a valid block.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The tag of the resident block (meaningless when invalid).
    #[must_use]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `true` if any word of the block is dirty.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty != 0
    }

    /// The per-word dirty bitmap (bit `i` set ⇔ word `i` dirty).
    #[must_use]
    pub fn dirty_mask(&self) -> u64 {
        self.dirty
    }

    /// `true` if word `w` is dirty.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn is_word_dirty(&self, w: usize) -> bool {
        assert!(w < self.words.len(), "word {w} out of range");
        self.dirty >> w & 1 == 1
    }

    /// Number of dirty words.
    #[must_use]
    pub fn dirty_word_count(&self) -> u32 {
        self.dirty.count_ones()
    }

    /// The data words.
    #[must_use]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Reads word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }
}

/// A mutable view of one block's data words, for fault injection and
/// recovery. Deliberately narrow: neither tag, valid nor dirty state can
/// be changed through it, so the cache's incremental dirty-word counter
/// stays correct.
#[derive(Debug)]
pub struct BlockMut<'a> {
    words: &'a mut [u64],
}

impl BlockMut<'_> {
    /// Overwrites word `w` *without* touching the dirty bit — used by
    /// recovery to write corrected data back in place.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn patch_word(&mut self, w: usize, value: u64) {
        self.words[w] = value;
    }

    /// Flips bit `bit` of word `w` — fault injection's entry point into
    /// the data array.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `bit` is out of range.
    pub fn flip_bit(&mut self, w: usize, bit: u32) {
        assert!(bit < 64, "bit {bit} out of range");
        assert!(w < self.words.len(), "word {w} out of range");
        self.words[w] ^= 1u64 << bit;
    }
}

/// A write-back, write-allocate set-associative cache holding real data.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::{Cache, CacheGeometry, MainMemory, ReplacementPolicy};
///
/// let geo = CacheGeometry::new(1024, 2, 32)?;
/// let mut mem = MainMemory::new();
/// let mut c = Cache::new(geo, ReplacementPolicy::Lru);
/// c.store_word(0x40, 99, &mut mem);
/// assert_eq!(c.load_word(0x40, &mut mem), 99);
/// assert_eq!(c.stats().store_misses, 1);
/// assert_eq!(c.stats().load_hits, 1);
/// # Ok::<(), cppc_cache_sim::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geo: CacheGeometry,
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<u64>,
    words: Vec<u64>,
    repl: Vec<SetReplacementState>,
    stats: CacheStats,
    dirty_words: u64,
    scrub_cursor: usize,
    scratch_fetches: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry and policy.
    /// Random replacement is seeded deterministically per set.
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let blocks = geo.num_sets() * geo.associativity();
        let repl = (0..geo.num_sets())
            .map(|s| SetReplacementState::new(policy, geo.associativity(), s as u64 ^ 0x9E37_79B9))
            .collect();
        Cache {
            geo,
            tags: vec![0; blocks],
            valid: vec![false; blocks],
            dirty: vec![0; blocks],
            words: vec![0; blocks * geo.words_per_block()],
            repl,
            stats: CacheStats::default(),
            dirty_words: 0,
            scrub_cursor: 0,
            scratch_fetches: 0,
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geo
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (for dirty-residency sampling by drivers).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Zeroes the statistics (cache contents untouched) — used to
    /// exclude warm-up from measurements.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of dirty words currently resident (maintained
    /// incrementally; O(1)).
    #[must_use]
    pub fn dirty_word_count(&self) -> u64 {
        self.dirty_words
    }

    /// Number of block fetches served directly into reused storage (the
    /// arena slot on fills, caller buffers on block reads) — i.e. without
    /// allocating a transfer buffer. Monotonic; not part of
    /// [`CacheStats`] and unaffected by [`Cache::reset_stats`].
    #[must_use]
    pub fn scratch_reuse(&self) -> u64 {
        self.scratch_fetches
    }

    #[inline]
    fn index(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.geo.num_sets(), "set {set} out of range");
        debug_assert!(way < self.geo.associativity(), "way {way} out of range");
        set * self.geo.associativity() + way
    }

    #[inline]
    fn block_words(&self, idx: usize) -> &[u64] {
        let wpb = self.geo.words_per_block();
        &self.words[idx * wpb..(idx + 1) * wpb]
    }

    /// Writes `value` into word `w` of the block at `idx`, marks it
    /// dirty, and returns `(old_value, was_already_dirty)`. Hit/miss and
    /// dirty statistics are the caller's business.
    #[inline]
    fn write_word_raw(&mut self, idx: usize, w: usize, value: u64) -> (u64, bool) {
        let wpb = self.geo.words_per_block();
        assert!(w < wpb, "word {w} out of range");
        let p = idx * wpb + w;
        let old = self.words[p];
        let was_dirty = self.dirty[idx] >> w & 1 == 1;
        self.words[p] = value;
        self.dirty[idx] |= 1 << w;
        (old, was_dirty)
    }

    /// Bumps `stores_to_dirty` / the dirty-word counter for one
    /// word-store whose prior dirtiness was `was_dirty`.
    #[inline]
    fn note_store(&mut self, was_dirty: bool) {
        if was_dirty {
            self.stats.stores_to_dirty += 1;
        } else {
            self.dirty_words += 1;
        }
    }

    /// Reads word `w` of the block at `(set, way)` straight from the
    /// arena — the protected-cache wrappers' hot-path read, which needs
    /// no block view.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range (indices are debug-checked).
    #[inline]
    #[must_use]
    pub fn word_at(&self, set: usize, way: usize, w: usize) -> u64 {
        let wpb = self.geo.words_per_block();
        assert!(w < wpb, "word {w} out of range");
        self.words[self.index(set, way) * wpb + w]
    }

    /// The data words of the block at `(set, way)` as one slice.
    #[inline]
    #[must_use]
    pub fn words_at(&self, set: usize, way: usize) -> &[u64] {
        self.block_words(self.index(set, way))
    }

    /// The per-word dirty bitmap of the block at `(set, way)`.
    #[inline]
    #[must_use]
    pub fn dirty_mask_at(&self, set: usize, way: usize) -> u64 {
        self.dirty[self.index(set, way)]
    }

    /// `true` when `(set, way)` holds a valid block.
    #[inline]
    #[must_use]
    pub fn is_valid_at(&self, set: usize, way: usize) -> bool {
        self.valid[self.index(set, way)]
    }

    /// Looks up `addr`; returns `(set, way)` on a hit without updating
    /// replacement state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> Option<(usize, usize)> {
        let set = self.geo.set_index(addr);
        let tag = self.geo.tag(addr);
        let base = set * self.geo.associativity();
        (0..self.geo.associativity())
            .find(|&way| self.valid[base + way] && self.tags[base + way] == tag)
            .map(|way| (set, way))
    }

    /// Reads the word at `addr` if resident, without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        let (set, way) = self.probe(addr)?;
        let idx = self.index(set, way);
        Some(self.block_words(idx)[self.geo.word_index(addr)])
    }

    /// Loads the 64-bit word at `addr`, filling from `backing` on a miss.
    pub fn load_word<B: Backing>(&mut self, addr: u64, backing: &mut B) -> u64 {
        let w = self.geo.word_index(addr);
        let (set, way) = match self.probe(addr) {
            Some((set, way)) => {
                self.stats.load_hits += 1;
                self.repl[set].touch(way);
                (set, way)
            }
            None => {
                self.stats.load_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        let idx = self.index(set, way);
        self.block_words(idx)[w]
    }

    /// Stores the 64-bit word `value` at `addr` (write-allocate).
    /// Returns `(old_word, was_dirty)` for the written word.
    pub fn store_word<B: Backing>(
        &mut self,
        addr: u64,
        value: u64,
        backing: &mut B,
    ) -> (u64, bool) {
        let w = self.geo.word_index(addr);
        let (set, way) = match self.probe(addr) {
            Some(hit) => {
                self.stats.store_hits += 1;
                hit
            }
            None => {
                self.stats.store_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        self.repl[set].touch(way);
        let idx = self.index(set, way);
        let (old, was_dirty) = self.write_word_raw(idx, w, value);
        self.note_store(was_dirty);
        (old, was_dirty)
    }

    /// Stores one byte at `addr` (partial store). Returns `(old_word,
    /// was_dirty)`.
    pub fn store_byte<B: Backing>(&mut self, addr: u64, value: u8, backing: &mut B) -> (u64, bool) {
        let w = self.geo.word_index(addr);
        let byte = self.geo.byte_in_word(addr);
        let (set, way) = match self.probe(addr) {
            Some(hit) => {
                self.stats.store_hits += 1;
                hit
            }
            None => {
                self.stats.store_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        self.repl[set].touch(way);
        let idx = self.index(set, way);
        let old = self.block_words(idx)[w];
        let shift = 8 * byte as u32;
        let merged = (old & !(0xFFu64 << shift)) | (u64::from(value) << shift);
        let (old, was_dirty) = self.write_word_raw(idx, w, merged);
        self.note_store(was_dirty);
        (old, was_dirty)
    }

    /// Reads the whole block containing `addr` (one access) into the
    /// caller-provided `buf`, filling on a miss. Used when this cache is
    /// the backing of a level above: the level above passes its own
    /// arena slot, so the transfer is a slice copy with no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one block wide.
    pub fn read_block_into<B: Backing>(&mut self, addr: u64, backing: &mut B, buf: &mut [u64]) {
        assert_eq!(buf.len(), self.geo.words_per_block(), "block width");
        let (set, way) = match self.probe(addr) {
            Some((set, way)) => {
                self.stats.load_hits += 1;
                self.repl[set].touch(way);
                (set, way)
            }
            None => {
                self.stats.load_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        let idx = self.index(set, way);
        buf.copy_from_slice(self.block_words(idx));
        self.scratch_fetches += 1;
    }

    /// Allocating convenience wrapper around [`Cache::read_block_into`].
    pub fn read_block<B: Backing>(&mut self, addr: u64, backing: &mut B) -> Vec<u64> {
        let mut buf = vec![0u64; self.geo.words_per_block()];
        self.read_block_into(addr, backing, &mut buf);
        buf
    }

    /// Accepts a block-granularity write (e.g. a write-back from the
    /// level above): words selected by `mask` are stored and marked
    /// dirty. Returns whether any targeted word was already dirty — the
    /// L2 CPPC read-before-write trigger.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block wide.
    pub fn write_block<B: Backing>(
        &mut self,
        addr: u64,
        data: &[u64],
        mask: u64,
        backing: &mut B,
    ) -> bool {
        assert_eq!(data.len(), self.geo.words_per_block(), "block width");
        let (set, way) = match self.probe(addr) {
            Some(hit) => {
                self.stats.store_hits += 1;
                hit
            }
            None => {
                self.stats.store_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        self.repl[set].touch(way);
        let idx = self.index(set, way);
        let mut any_dirty = false;
        for (w, &value) in data.iter().enumerate() {
            if mask >> w & 1 == 1 {
                let (_, was_dirty) = self.write_word_raw(idx, w, value);
                if was_dirty {
                    any_dirty = true;
                } else {
                    self.dirty_words += 1;
                }
            }
        }
        if any_dirty {
            self.stats.stores_to_dirty += 1;
        }
        any_dirty
    }

    /// Chooses the way a fill for `addr`'s set would land in: the first
    /// invalid way if any, otherwise the replacement victim. Protected
    /// caches call this *before* [`Cache::fill_into`] so they can process
    /// the outgoing block (e.g. CPPC XORs evicted dirty words into R2 and
    /// parity-checks them first).
    pub fn choose_way_for_fill(&mut self, set: usize) -> usize {
        assert!(set < self.geo.num_sets(), "set {set} out of range");
        let base = set * self.geo.associativity();
        (0..self.geo.associativity())
            .find(|&way| !self.valid[base + way])
            .unwrap_or_else(|| self.repl[set].victim())
    }

    /// Brings the block containing `addr` into the cache, evicting as
    /// needed. Returns `(set, way, eviction)`.
    pub fn fill<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> (usize, usize, Option<Eviction>) {
        let set = self.geo.set_index(addr);
        let way = self.choose_way_for_fill(set);
        let eviction = self.fill_into(addr, way, backing);
        (set, way, eviction)
    }

    /// Brings the block containing `addr` into way `way` of its set,
    /// writing back the displaced block if dirty. The fetch fills the
    /// block's arena slot directly — no transfer buffer is allocated.
    /// Returns the eviction, if a valid block was displaced.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn fill_into<B: Backing>(
        &mut self,
        addr: u64,
        way: usize,
        backing: &mut B,
    ) -> Option<Eviction> {
        let set = self.geo.set_index(addr);
        let tag = self.geo.tag(addr);
        assert!(way < self.geo.associativity(), "way {way} out of range");

        let eviction = self.evict_way(set, way, backing);
        let base = self.geo.block_base(addr);
        let idx = self.index(set, way);
        let wpb = self.geo.words_per_block();
        backing.fetch_block_into(base, &mut self.words[idx * wpb..(idx + 1) * wpb]);
        self.tags[idx] = tag;
        self.valid[idx] = true;
        self.dirty[idx] = 0;
        self.scratch_fetches += 1;
        self.stats.fills += 1;
        self.repl[set].filled(way);
        eviction
    }

    fn evict_way<B: Backing>(
        &mut self,
        set: usize,
        way: usize,
        backing: &mut B,
    ) -> Option<Eviction> {
        let idx = self.index(set, way);
        if !self.valid[idx] {
            return None;
        }
        let base = self.geo.address_of(self.tags[idx], set);
        let mask = self.dirty[idx];
        if mask != 0 {
            let wpb = self.geo.words_per_block();
            backing.write_back(base, &self.words[idx * wpb..(idx + 1) * wpb], mask);
            self.stats.writebacks += 1;
            self.stats.writeback_words += u64::from(mask.count_ones());
            self.dirty_words -= u64::from(mask.count_ones());
        } else {
            self.stats.clean_evictions += 1;
        }
        self.valid[idx] = false;
        self.dirty[idx] = 0;
        Some(Eviction {
            base,
            dirty_mask: mask,
        })
    }

    /// Stores `value` into word `w` of the resident block at `(set,
    /// way)`, maintaining the dirty-word counter, replacement state and
    /// the `stores_to_dirty` statistic (but *not* hit/miss counters —
    /// the caller has already classified the access). Returns
    /// `(old_word, was_dirty)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid or indices are out of range.
    pub fn store_word_in_place(
        &mut self,
        set: usize,
        way: usize,
        w: usize,
        value: u64,
    ) -> (u64, bool) {
        let idx = self.index(set, way);
        assert!(self.valid[idx], "block ({set},{way}) invalid");
        self.repl[set].touch(way);
        let (old, was_dirty) = self.write_word_raw(idx, w, value);
        self.note_store(was_dirty);
        (old, was_dirty)
    }

    /// Byte-granularity variant of [`Cache::store_word_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid or indices are out of range.
    pub fn store_byte_in_place(
        &mut self,
        set: usize,
        way: usize,
        w: usize,
        byte: usize,
        value: u8,
    ) -> (u64, bool) {
        assert!(byte < 8, "byte {byte} out of range");
        let idx = self.index(set, way);
        assert!(self.valid[idx], "block ({set},{way}) invalid");
        self.repl[set].touch(way);
        let old = self.block_words(idx)[w];
        let shift = 8 * byte as u32;
        let merged = (old & !(0xFFu64 << shift)) | (u64::from(value) << shift);
        let (old, was_dirty) = self.write_word_raw(idx, w, merged);
        self.note_store(was_dirty);
        (old, was_dirty)
    }

    /// Records a replacement-policy touch of `(set, way)` without any
    /// data movement (used when a wrapper classifies hits itself).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn touch(&mut self, set: usize, way: usize) {
        assert!(way < self.geo.associativity(), "way {way} out of range");
        self.repl[set].touch(way);
    }

    /// Writes the dirty words of the block at `(set, way)` back to
    /// `backing` and cleans the block, leaving it resident. No-op for
    /// clean or invalid blocks.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn writeback_block<B: Backing>(&mut self, set: usize, way: usize, backing: &mut B) {
        let idx = self.index(set, way);
        if !self.valid[idx] || self.dirty[idx] == 0 {
            return;
        }
        let base = self.geo.address_of(self.tags[idx], set);
        let mask = self.dirty[idx];
        let wpb = self.geo.words_per_block();
        backing.write_back(base, &self.words[idx * wpb..(idx + 1) * wpb], mask);
        self.stats.writebacks += 1;
        self.stats.writeback_words += u64::from(mask.count_ones());
        self.dirty_words -= u64::from(mask.count_ones());
        self.dirty[idx] = 0;
    }

    /// Invalidates the block at `(set, way)` without writing it back;
    /// dirty words are dropped (callers wanting them preserved run
    /// [`Cache::writeback_block`] first). Returns the number of dirty
    /// words dropped. No-op on invalid blocks.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn invalidate_way(&mut self, set: usize, way: usize) -> u32 {
        let idx = self.index(set, way);
        if !self.valid[idx] {
            return 0;
        }
        let dropped = self.dirty[idx].count_ones();
        self.dirty_words -= u64::from(dropped);
        self.valid[idx] = false;
        self.dirty[idx] = 0;
        dropped
    }

    /// Bumps the hit/miss counters directly — used by protected-cache
    /// wrappers that classify accesses themselves before using the
    /// in-place primitives.
    pub fn record_access(&mut self, is_store: bool, hit: bool) {
        match (is_store, hit) {
            (false, true) => self.stats.load_hits += 1,
            (false, false) => self.stats.load_misses += 1,
            (true, true) => self.stats.store_hits += 1,
            (true, false) => self.stats.store_misses += 1,
        }
    }

    /// Early write-back (the related-work policy of [2, 15] the paper
    /// §2 discusses): walks the sets round-robin from an internal cursor
    /// and writes back up to `max_blocks` dirty blocks, cleaning them in
    /// place. Returns how many blocks were written back.
    ///
    /// Reduces dirty residency (and hence parity-cache vulnerability) at
    /// the price of extra write-back traffic — the trade-off the paper
    /// contrasts CPPC against.
    pub fn early_writeback<B: Backing>(&mut self, max_blocks: usize, backing: &mut B) -> usize {
        let sets = self.geo.num_sets();
        let ways = self.geo.associativity();
        let mut cleaned = 0;
        for step in 0..sets * ways {
            if cleaned >= max_blocks {
                break;
            }
            let idx = (self.scrub_cursor + step) % (sets * ways);
            let (set, way) = (idx / ways, idx % ways);
            if self.valid[idx] && self.dirty[idx] != 0 {
                self.writeback_block(set, way, backing);
                cleaned += 1;
                self.scrub_cursor = (idx + 1) % (sets * ways);
            }
        }
        cleaned
    }

    /// Writes every dirty block back to `backing` and cleans it (cache
    /// contents stay resident).
    pub fn flush<B: Backing>(&mut self, backing: &mut B) {
        for set in 0..self.geo.num_sets() {
            for way in 0..self.geo.associativity() {
                let idx = self.index(set, way);
                if self.valid[idx] && self.dirty[idx] != 0 {
                    self.writeback_block(set, way, backing);
                }
            }
        }
    }

    /// Iterates over `(set, way, block)` for every valid block.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, BlockRef<'_>)> {
        let ways = self.geo.associativity();
        (0..self.tags.len())
            .filter(|&idx| self.valid[idx])
            .map(move |idx| (idx / ways, idx % ways, self.block_ref(idx)))
    }

    /// Iterates over every dirty word as `(set, way, word_index, value)`.
    ///
    /// Walks each block's 64-bit dirty bitmask with `trailing_zeros`
    /// (clearing the lowest set bit each step), so clean words cost
    /// nothing; the order is ascending `(block, word)` exactly as the
    /// per-word scan produced.
    pub fn iter_dirty_words(&self) -> impl Iterator<Item = (usize, usize, usize, u64)> + '_ {
        let ways = self.geo.associativity();
        (0..self.tags.len()).flat_map(move |idx| {
            let mut mask = if self.valid[idx] { self.dirty[idx] } else { 0 };
            std::iter::from_fn(move || {
                if mask == 0 {
                    return None;
                }
                let w = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                Some((idx / ways, idx % ways, w, self.block_words(idx)[w]))
            })
        })
    }

    /// Captures the cache's complete mutable state into a fresh
    /// [`CacheSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut snap = CacheSnapshot::default();
        self.capture_snapshot(&mut snap);
        snap
    }

    /// Captures the cache's complete mutable state into `snap`, reusing
    /// its buffers.
    pub fn capture_snapshot(&self, snap: &mut CacheSnapshot) {
        snap.tags.clone_from(&self.tags);
        snap.valid.clone_from(&self.valid);
        snap.dirty.clone_from(&self.dirty);
        snap.words.clone_from(&self.words);
        snap.repl.clone_from(&self.repl);
        snap.stats = self.stats;
        snap.dirty_words = self.dirty_words;
        snap.scrub_cursor = self.scrub_cursor;
        snap.scratch_fetches = self.scratch_fetches;
    }

    /// Restores the state captured by [`Cache::snapshot`] into the
    /// existing arenas — pure `copy_from_slice`, no allocation. The
    /// geometry itself is immutable, so a snapshot taken from this cache
    /// (or any cache of identical geometry) always fits.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a different geometry.
    pub fn restore_snapshot(&mut self, snap: &CacheSnapshot) {
        assert_eq!(
            self.tags.len(),
            snap.tags.len(),
            "snapshot from a different geometry"
        );
        assert_eq!(
            self.words.len(),
            snap.words.len(),
            "snapshot from a different geometry"
        );
        self.tags.copy_from_slice(&snap.tags);
        self.valid.copy_from_slice(&snap.valid);
        self.dirty.copy_from_slice(&snap.dirty);
        self.words.copy_from_slice(&snap.words);
        for (dst, src) in self.repl.iter_mut().zip(&snap.repl) {
            dst.copy_state_from(src);
        }
        self.stats = snap.stats;
        self.dirty_words = snap.dirty_words;
        self.scrub_cursor = snap.scrub_cursor;
        self.scratch_fetches = snap.scratch_fetches;
    }

    #[inline]
    fn block_ref(&self, idx: usize) -> BlockRef<'_> {
        BlockRef {
            tag: self.tags[idx],
            valid: self.valid[idx],
            dirty: self.dirty[idx],
            words: self.block_words(idx),
        }
    }

    /// Direct block access (fault injection / recovery).
    ///
    /// # Panics
    ///
    /// Panics if `set`/`way` are out of range.
    #[must_use]
    pub fn block(&self, set: usize, way: usize) -> BlockRef<'_> {
        assert!(set < self.geo.num_sets(), "set {set} out of range");
        assert!(way < self.geo.associativity(), "way {way} out of range");
        self.block_ref(self.index(set, way))
    }

    /// Direct mutable access to the data words of the block at `(set,
    /// way)` (fault injection / recovery).
    ///
    /// # Panics
    ///
    /// Panics if `set`/`way` are out of range.
    pub fn block_mut(&mut self, set: usize, way: usize) -> BlockMut<'_> {
        assert!(set < self.geo.num_sets(), "set {set} out of range");
        assert!(way < self.geo.associativity(), "way {way} out of range");
        let idx = self.index(set, way);
        let wpb = self.geo.words_per_block();
        BlockMut {
            words: &mut self.words[idx * wpb..(idx + 1) * wpb],
        }
    }

    /// Reconstructs the block base address of the block at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid.
    #[must_use]
    pub fn block_address(&self, set: usize, way: usize) -> u64 {
        let idx = self.index(set, way);
        assert!(self.valid[idx], "block ({set},{way}) is invalid");
        self.geo.address_of(self.tags[idx], set)
    }

    /// The address of word `w` of the block at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid or `w` out of range.
    #[must_use]
    pub fn word_address(&self, set: usize, way: usize, w: usize) -> u64 {
        assert!(w < self.geo.words_per_block(), "word {w} out of range");
        self.block_address(set, way) + (w * WORD_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    fn small() -> (Cache, MainMemory) {
        let geo = CacheGeometry::new(256, 2, 32).unwrap(); // 4 sets
        (Cache::new(geo, ReplacementPolicy::Lru), MainMemory::new())
    }

    #[test]
    fn store_then_load_hits() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 7, &mut m);
        assert_eq!(c.load_word(0x40, &mut m), 7);
        assert_eq!(c.stats().store_misses, 1);
        assert_eq!(c.stats().load_hits, 1);
        assert_eq!(c.dirty_word_count(), 1);
    }

    #[test]
    fn dirty_data_not_in_memory_until_eviction() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 7, &mut m);
        assert_eq!(m.peek_word(0x40), 0, "write-back: memory stale");
        // Evict set 2 (0x40 >> 5 = 2) by touching two more blocks mapping there.
        c.load_word(0x40 + 256, &mut m);
        c.load_word(0x40 + 512, &mut m);
        assert_eq!(m.peek_word(0x40), 7, "write-back happened on eviction");
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.dirty_word_count(), 0);
    }

    #[test]
    fn store_to_dirty_counted() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 1, &mut m);
        assert_eq!(c.stats().stores_to_dirty, 0);
        c.store_word(0x40, 2, &mut m);
        assert_eq!(c.stats().stores_to_dirty, 1);
        // A different word in the same block is a fresh dirty word.
        c.store_word(0x48, 3, &mut m);
        assert_eq!(c.stats().stores_to_dirty, 1);
        assert_eq!(c.dirty_word_count(), 2);
    }

    #[test]
    fn store_byte_merges() {
        let (mut c, mut m) = small();
        m.write_word(0x40, 0x1111_1111_1111_1111);
        c.store_byte(0x42, 0xAB, &mut m);
        assert_eq!(c.load_word(0x40, &mut m), 0x1111_1111_11AB_1111);
    }

    #[test]
    fn flush_writes_everything() {
        let (mut c, mut m) = small();
        c.store_word(0x00, 1, &mut m);
        c.store_word(0x20, 2, &mut m);
        c.store_word(0x48, 3, &mut m);
        c.flush(&mut m);
        assert_eq!(m.peek_word(0x00), 1);
        assert_eq!(m.peek_word(0x20), 2);
        assert_eq!(m.peek_word(0x48), 3);
        assert_eq!(c.dirty_word_count(), 0);
        // Data still resident after flush:
        assert_eq!(c.peek_word(0x48), Some(3));
    }

    #[test]
    fn clean_eviction_counted() {
        let (mut c, mut m) = small();
        c.load_word(0x40, &mut m);
        c.load_word(0x40 + 256, &mut m);
        c.load_word(0x40 + 512, &mut m);
        assert_eq!(c.stats().clean_evictions, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn iter_dirty_words_finds_all() {
        let (mut c, mut m) = small();
        c.store_word(0x00, 11, &mut m);
        c.store_word(0x58, 22, &mut m);
        let dirty: Vec<u64> = c.iter_dirty_words().map(|(_, _, _, v)| v).collect();
        assert_eq!(dirty.len(), 2);
        assert!(dirty.contains(&11) && dirty.contains(&22));
    }

    #[test]
    fn write_block_marks_masked_words() {
        let (mut c, mut m) = small();
        let any_dirty = c.write_block(0x40, &[1, 2, 3, 4], 0b0110, &mut m);
        assert!(!any_dirty);
        assert_eq!(c.peek_word(0x48), Some(2));
        assert_eq!(c.peek_word(0x40), Some(0), "unmasked word keeps fill data");
        assert_eq!(c.dirty_word_count(), 2);
        // Second write over the same words reports dirtiness.
        let any_dirty = c.write_block(0x40, &[9, 9, 9, 9], 0b0010, &mut m);
        assert!(any_dirty);
        assert_eq!(c.stats().stores_to_dirty, 1);
    }

    #[test]
    fn lru_keeps_hot_block() {
        let (mut c, mut m) = small();
        c.load_word(0x40, &mut m); // A
        c.load_word(0x40 + 256, &mut m); // B
        c.load_word(0x40, &mut m); // touch A
        c.load_word(0x40 + 512, &mut m); // C evicts B
        assert!(c.probe(0x40).is_some(), "A stays");
        assert!(c.probe(0x40 + 256).is_none(), "B evicted");
    }

    #[test]
    fn word_address_roundtrip() {
        let (mut c, mut m) = small();
        c.store_word(0x1248, 5, &mut m);
        let (set, way) = c.probe(0x1248).unwrap();
        let w = c.geometry().word_index(0x1248);
        assert_eq!(c.word_address(set, way, w), 0x1248);
    }

    #[test]
    fn read_block_into_copies_resident_data() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 7, &mut m);
        c.store_word(0x48, 8, &mut m);
        let mut buf = [0u64; 4];
        c.read_block_into(0x40, &mut m, &mut buf);
        assert_eq!(buf, [7, 8, 0, 0]);
        assert_eq!(c.stats().load_hits, 1);
        assert!(c.scratch_reuse() >= 1);
    }

    #[test]
    fn scratch_reuse_counts_fills() {
        let (mut c, mut m) = small();
        assert_eq!(c.scratch_reuse(), 0);
        c.load_word(0x40, &mut m);
        assert_eq!(c.scratch_reuse(), 1, "miss fetched into the arena");
        c.load_word(0x40, &mut m);
        assert_eq!(c.scratch_reuse(), 1, "hit fetches nothing");
        c.reset_stats();
        assert_eq!(c.scratch_reuse(), 1, "not part of CacheStats");
    }

    /// Functional transparency: a cache + memory must behave exactly like
    /// a flat memory for any access sequence.
    #[test]
    fn randomised_vs_flat_memory_oracle() {
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        let geo = CacheGeometry::new(512, 2, 32).unwrap();
        let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
        let mut mem = MainMemory::new();
        let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let addr = (rng.random_range(0..4096u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                cache.store_word(addr, v, &mut mem);
                oracle.insert(addr, v);
            } else {
                let got = cache.load_word(addr, &mut mem);
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "addr {addr:#x}");
            }
        }
        cache.flush(&mut mem);
        for (addr, v) in oracle {
            assert_eq!(m_peek(&mem, addr), v);
        }
        fn m_peek(m: &MainMemory, a: u64) -> u64 {
            m.peek_word(a)
        }
    }

    #[test]
    fn dirty_count_matches_iteration() {
        let mut rng = StdRng::seed_from_u64(3);
        let geo = CacheGeometry::new(256, 2, 32).unwrap();
        let mut c = Cache::new(geo, ReplacementPolicy::Lru);
        let mut m = MainMemory::new();
        for _ in 0..500 {
            let addr = (rng.random_range(0..2048u64)) & !7;
            if rng.random_bool(0.5) {
                c.store_word(addr, rng.random(), &mut m);
            } else {
                c.load_word(addr, &mut m);
            }
            assert_eq!(c.dirty_word_count(), c.iter_dirty_words().count() as u64);
        }
    }

    #[test]
    fn prop_transparency() {
        let mut rng = StdRng::seed_from_u64(0xCAC4_0001);
        for _ in 0..64 {
            let geo = CacheGeometry::new(256, 2, 32).unwrap();
            let mut cache = Cache::new(geo, ReplacementPolicy::Fifo);
            let mut mem = MainMemory::new();
            let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            for _ in 0..rng.random_range(1usize..200) {
                let addr = u64::from(rng.random::<u64>() as u16) & !7;
                if rng.random_bool(0.5) {
                    let v = rng.random::<u64>();
                    cache.store_word(addr, v, &mut mem);
                    oracle.insert(addr, v);
                } else {
                    assert_eq!(
                        cache.load_word(addr, &mut mem),
                        *oracle.get(&addr).unwrap_or(&0),
                        "addr {addr:#x}"
                    );
                }
            }
        }
    }
}
