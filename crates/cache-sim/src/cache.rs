//! The write-back, write-allocate set-associative cache.

use crate::block::CacheBlock;
use crate::geometry::{CacheGeometry, WORD_BYTES};
use crate::memory::MainMemory;
use crate::replacement::{ReplacementPolicy, SetReplacementState};
use crate::stats::CacheStats;

/// Anything that can stand below a cache: the next cache level or main
/// memory. Fetches return real data; write-backs carry the dirty mask so
/// only modified words propagate.
pub trait Backing {
    /// Fetches the block of `words` 64-bit words at block-aligned `base`.
    fn fetch_block(&mut self, base: u64, words: usize) -> Vec<u64>;

    /// Accepts a write-back of the dirty words of the block at `base`
    /// (`dirty_mask` bit `i` set ⇔ `data[i]` is dirty).
    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64);
}

impl Backing for MainMemory {
    fn fetch_block(&mut self, base: u64, words: usize) -> Vec<u64> {
        self.read_block(base, words)
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        self.write_back_dirty(base, data, dirty_mask);
    }
}

/// A block evicted by a fill, handed back so protected caches can update
/// their bookkeeping (e.g. CPPC XORs evicted dirty words into R2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Block base address of the evicted block.
    pub base: u64,
    /// The evicted data words.
    pub words: Vec<u64>,
    /// Per-word dirty mask at eviction time.
    pub dirty_mask: u64,
}

/// A write-back, write-allocate set-associative cache holding real data.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::{Cache, CacheGeometry, MainMemory, ReplacementPolicy};
///
/// let geo = CacheGeometry::new(1024, 2, 32)?;
/// let mut mem = MainMemory::new();
/// let mut c = Cache::new(geo, ReplacementPolicy::Lru);
/// c.store_word(0x40, 99, &mut mem);
/// assert_eq!(c.load_word(0x40, &mut mem), 99);
/// assert_eq!(c.stats().store_misses, 1);
/// assert_eq!(c.stats().load_hits, 1);
/// # Ok::<(), cppc_cache_sim::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geo: CacheGeometry,
    sets: Vec<Vec<CacheBlock>>,
    repl: Vec<SetReplacementState>,
    stats: CacheStats,
    dirty_words: u64,
    scrub_cursor: usize,
}

impl Cache {
    /// Creates an empty cache with the given geometry and policy.
    /// Random replacement is seeded deterministically per set.
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let wpb = geo.words_per_block();
        let sets = (0..geo.num_sets())
            .map(|_| {
                (0..geo.associativity())
                    .map(|_| CacheBlock::invalid(wpb))
                    .collect()
            })
            .collect();
        let repl = (0..geo.num_sets())
            .map(|s| SetReplacementState::new(policy, geo.associativity(), s as u64 ^ 0x9E37_79B9))
            .collect();
        Cache {
            geo,
            sets,
            repl,
            stats: CacheStats::default(),
            dirty_words: 0,
            scrub_cursor: 0,
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geo
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (for dirty-residency sampling by drivers).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Zeroes the statistics (cache contents untouched) — used to
    /// exclude warm-up from measurements.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of dirty words currently resident (maintained
    /// incrementally; O(1)).
    #[must_use]
    pub fn dirty_word_count(&self) -> u64 {
        self.dirty_words
    }

    /// Looks up `addr`; returns `(set, way)` on a hit without updating
    /// replacement state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> Option<(usize, usize)> {
        let set = self.geo.set_index(addr);
        let tag = self.geo.tag(addr);
        self.sets[set]
            .iter()
            .position(|b| b.is_valid() && b.tag() == tag)
            .map(|way| (set, way))
    }

    /// Reads the word at `addr` if resident, without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        let (set, way) = self.probe(addr)?;
        Some(self.sets[set][way].word(self.geo.word_index(addr)))
    }

    /// Loads the 64-bit word at `addr`, filling from `backing` on a miss.
    pub fn load_word<B: Backing>(&mut self, addr: u64, backing: &mut B) -> u64 {
        let w = self.geo.word_index(addr);
        match self.probe(addr) {
            Some((set, way)) => {
                self.stats.load_hits += 1;
                self.repl[set].touch(way);
                self.sets[set][way].word(w)
            }
            None => {
                self.stats.load_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                self.sets[set][way].word(w)
            }
        }
    }

    /// Stores the 64-bit word `value` at `addr` (write-allocate).
    /// Returns `(old_word, was_dirty)` for the written word.
    pub fn store_word<B: Backing>(
        &mut self,
        addr: u64,
        value: u64,
        backing: &mut B,
    ) -> (u64, bool) {
        let w = self.geo.word_index(addr);
        let (set, way) = match self.probe(addr) {
            Some(hit) => {
                self.stats.store_hits += 1;
                hit
            }
            None => {
                self.stats.store_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        self.repl[set].touch(way);
        let (old, was_dirty) = self.sets[set][way].store_word(w, value);
        if was_dirty {
            self.stats.stores_to_dirty += 1;
        } else {
            self.dirty_words += 1;
        }
        (old, was_dirty)
    }

    /// Stores one byte at `addr` (partial store). Returns `(old_word,
    /// was_dirty)`.
    pub fn store_byte<B: Backing>(&mut self, addr: u64, value: u8, backing: &mut B) -> (u64, bool) {
        let w = self.geo.word_index(addr);
        let byte = self.geo.byte_in_word(addr);
        let (set, way) = match self.probe(addr) {
            Some(hit) => {
                self.stats.store_hits += 1;
                hit
            }
            None => {
                self.stats.store_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        self.repl[set].touch(way);
        let (old, was_dirty) = self.sets[set][way].store_byte(w, byte, value);
        if was_dirty {
            self.stats.stores_to_dirty += 1;
        } else {
            self.dirty_words += 1;
        }
        (old, was_dirty)
    }

    /// Reads the whole block containing `addr` (one access), filling on a
    /// miss. Used when this cache is the backing of a level above.
    pub fn read_block<B: Backing>(&mut self, addr: u64, backing: &mut B) -> Vec<u64> {
        match self.probe(addr) {
            Some((set, way)) => {
                self.stats.load_hits += 1;
                self.repl[set].touch(way);
                self.sets[set][way].words().to_vec()
            }
            None => {
                self.stats.load_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                self.sets[set][way].words().to_vec()
            }
        }
    }

    /// Accepts a block-granularity write (e.g. a write-back from the
    /// level above): words selected by `mask` are stored and marked
    /// dirty. Returns `(old_words, any_target_dirty)` — the latter is the
    /// L2 CPPC read-before-write trigger.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block wide.
    pub fn write_block<B: Backing>(
        &mut self,
        addr: u64,
        data: &[u64],
        mask: u64,
        backing: &mut B,
    ) -> (Vec<u64>, bool) {
        assert_eq!(data.len(), self.geo.words_per_block(), "block width");
        let (set, way) = match self.probe(addr) {
            Some(hit) => {
                self.stats.store_hits += 1;
                hit
            }
            None => {
                self.stats.store_misses += 1;
                let (set, way, _) = self.fill(addr, backing);
                (set, way)
            }
        };
        self.repl[set].touch(way);
        let block = &mut self.sets[set][way];
        let old = block.words().to_vec();
        let mut any_dirty = false;
        for (w, &value) in data.iter().enumerate() {
            if mask >> w & 1 == 1 {
                let (_, was_dirty) = block.store_word(w, value);
                if was_dirty {
                    any_dirty = true;
                } else {
                    self.dirty_words += 1;
                }
            }
        }
        if any_dirty {
            self.stats.stores_to_dirty += 1;
        }
        (old, any_dirty)
    }

    /// Chooses the way a fill for `addr`'s set would land in: the first
    /// invalid way if any, otherwise the replacement victim. Protected
    /// caches call this *before* [`Cache::fill_into`] so they can process
    /// the outgoing block (e.g. CPPC XORs evicted dirty words into R2 and
    /// parity-checks them first).
    pub fn choose_way_for_fill(&mut self, set: usize) -> usize {
        assert!(set < self.geo.num_sets(), "set {set} out of range");
        self.sets[set]
            .iter()
            .position(|b| !b.is_valid())
            .unwrap_or_else(|| self.repl[set].victim())
    }

    /// Brings the block containing `addr` into the cache, evicting as
    /// needed. Returns `(set, way, eviction)`.
    pub fn fill<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> (usize, usize, Option<Eviction>) {
        let set = self.geo.set_index(addr);
        let way = self.choose_way_for_fill(set);
        let eviction = self.fill_into(addr, way, backing);
        (set, way, eviction)
    }

    /// Brings the block containing `addr` into way `way` of its set,
    /// writing back the displaced block if dirty. Returns the eviction,
    /// if a valid block was displaced.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn fill_into<B: Backing>(
        &mut self,
        addr: u64,
        way: usize,
        backing: &mut B,
    ) -> Option<Eviction> {
        let set = self.geo.set_index(addr);
        let tag = self.geo.tag(addr);
        assert!(way < self.geo.associativity(), "way {way} out of range");

        let eviction = self.evict_way(set, way, backing);
        let base = self.geo.block_base(addr);
        let data = backing.fetch_block(base, self.geo.words_per_block());
        self.sets[set][way].fill(tag, &data);
        self.stats.fills += 1;
        self.repl[set].filled(way);
        eviction
    }

    fn evict_way<B: Backing>(
        &mut self,
        set: usize,
        way: usize,
        backing: &mut B,
    ) -> Option<Eviction> {
        let block = &mut self.sets[set][way];
        if !block.is_valid() {
            return None;
        }
        let base = self.geo.address_of(block.tag(), set);
        let mask = block.dirty_mask();
        let words = block.words().to_vec();
        if mask != 0 {
            backing.write_back(base, &words, mask);
            self.stats.writebacks += 1;
            self.stats.writeback_words += u64::from(mask.count_ones());
            self.dirty_words -= u64::from(mask.count_ones());
        } else {
            self.stats.clean_evictions += 1;
        }
        block.invalidate();
        Some(Eviction {
            base,
            words,
            dirty_mask: mask,
        })
    }

    /// Stores `value` into word `w` of the resident block at `(set,
    /// way)`, maintaining the dirty-word counter, replacement state and
    /// the `stores_to_dirty` statistic (but *not* hit/miss counters —
    /// the caller has already classified the access). Returns
    /// `(old_word, was_dirty)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid or indices are out of range.
    pub fn store_word_in_place(
        &mut self,
        set: usize,
        way: usize,
        w: usize,
        value: u64,
    ) -> (u64, bool) {
        assert!(
            self.sets[set][way].is_valid(),
            "block ({set},{way}) invalid"
        );
        self.repl[set].touch(way);
        let (old, was_dirty) = self.sets[set][way].store_word(w, value);
        if was_dirty {
            self.stats.stores_to_dirty += 1;
        } else {
            self.dirty_words += 1;
        }
        (old, was_dirty)
    }

    /// Byte-granularity variant of [`Cache::store_word_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid or indices are out of range.
    pub fn store_byte_in_place(
        &mut self,
        set: usize,
        way: usize,
        w: usize,
        byte: usize,
        value: u8,
    ) -> (u64, bool) {
        assert!(
            self.sets[set][way].is_valid(),
            "block ({set},{way}) invalid"
        );
        self.repl[set].touch(way);
        let (old, was_dirty) = self.sets[set][way].store_byte(w, byte, value);
        if was_dirty {
            self.stats.stores_to_dirty += 1;
        } else {
            self.dirty_words += 1;
        }
        (old, was_dirty)
    }

    /// Records a replacement-policy touch of `(set, way)` without any
    /// data movement (used when a wrapper classifies hits itself).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn touch(&mut self, set: usize, way: usize) {
        assert!(way < self.geo.associativity(), "way {way} out of range");
        self.repl[set].touch(way);
    }

    /// Writes the dirty words of the block at `(set, way)` back to
    /// `backing` and cleans the block, leaving it resident. No-op for
    /// clean or invalid blocks.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn writeback_block<B: Backing>(&mut self, set: usize, way: usize, backing: &mut B) {
        let block = &mut self.sets[set][way];
        if !block.is_valid() || !block.is_dirty() {
            return;
        }
        let base = self.geo.address_of(block.tag(), set);
        backing.write_back(base, block.words(), block.dirty_mask());
        self.stats.writebacks += 1;
        self.stats.writeback_words += u64::from(block.dirty_mask().count_ones());
        self.dirty_words -= u64::from(block.dirty_mask().count_ones());
        block.clean();
    }

    /// Invalidates the block at `(set, way)` without writing it back;
    /// dirty words are dropped (callers wanting them preserved run
    /// [`Cache::writeback_block`] first). Returns the number of dirty
    /// words dropped. No-op on invalid blocks.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn invalidate_way(&mut self, set: usize, way: usize) -> u32 {
        let block = &mut self.sets[set][way];
        if !block.is_valid() {
            return 0;
        }
        let dropped = block.dirty_mask().count_ones();
        self.dirty_words -= u64::from(dropped);
        block.invalidate();
        dropped
    }

    /// Bumps the hit/miss counters directly — used by protected-cache
    /// wrappers that classify accesses themselves before using the
    /// in-place primitives.
    pub fn record_access(&mut self, is_store: bool, hit: bool) {
        match (is_store, hit) {
            (false, true) => self.stats.load_hits += 1,
            (false, false) => self.stats.load_misses += 1,
            (true, true) => self.stats.store_hits += 1,
            (true, false) => self.stats.store_misses += 1,
        }
    }

    /// Early write-back (the related-work policy of [2, 15] the paper
    /// §2 discusses): walks the sets round-robin from an internal cursor
    /// and writes back up to `max_blocks` dirty blocks, cleaning them in
    /// place. Returns how many blocks were written back.
    ///
    /// Reduces dirty residency (and hence parity-cache vulnerability) at
    /// the price of extra write-back traffic — the trade-off the paper
    /// contrasts CPPC against.
    pub fn early_writeback<B: Backing>(&mut self, max_blocks: usize, backing: &mut B) -> usize {
        let sets = self.geo.num_sets();
        let ways = self.geo.associativity();
        let mut cleaned = 0;
        for step in 0..sets * ways {
            if cleaned >= max_blocks {
                break;
            }
            let idx = (self.scrub_cursor + step) % (sets * ways);
            let (set, way) = (idx / ways, idx % ways);
            if self.sets[set][way].is_valid() && self.sets[set][way].is_dirty() {
                self.writeback_block(set, way, backing);
                cleaned += 1;
                self.scrub_cursor = (idx + 1) % (sets * ways);
            }
        }
        cleaned
    }

    /// Writes every dirty block back to `backing` and cleans it (cache
    /// contents stay resident).
    pub fn flush<B: Backing>(&mut self, backing: &mut B) {
        for set in 0..self.geo.num_sets() {
            for way in 0..self.geo.associativity() {
                let block = &mut self.sets[set][way];
                if block.is_valid() && block.is_dirty() {
                    let base = self.geo.address_of(block.tag(), set);
                    backing.write_back(base, block.words(), block.dirty_mask());
                    self.stats.writebacks += 1;
                    self.stats.writeback_words += u64::from(block.dirty_mask().count_ones());
                    self.dirty_words -= u64::from(block.dirty_mask().count_ones());
                    block.clean();
                }
            }
        }
    }

    /// Iterates over `(set, way, block)` for every valid block.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &CacheBlock)> {
        self.sets.iter().enumerate().flat_map(|(s, ways)| {
            ways.iter()
                .enumerate()
                .filter(|(_, b)| b.is_valid())
                .map(move |(w, b)| (s, w, b))
        })
    }

    /// Iterates over every dirty word as `(set, way, word_index, value)`.
    pub fn iter_dirty_words(&self) -> impl Iterator<Item = (usize, usize, usize, u64)> + '_ {
        self.iter_blocks().flat_map(|(s, w, b)| {
            (0..b.words().len())
                .filter(move |&i| b.is_word_dirty(i))
                .map(move |i| (s, w, i, b.word(i)))
        })
    }

    /// Direct block access (fault injection / recovery).
    ///
    /// # Panics
    ///
    /// Panics if `set`/`way` are out of range.
    #[must_use]
    pub fn block(&self, set: usize, way: usize) -> &CacheBlock {
        &self.sets[set][way]
    }

    /// Direct mutable block access (fault injection / recovery).
    ///
    /// # Panics
    ///
    /// Panics if `set`/`way` are out of range.
    pub fn block_mut(&mut self, set: usize, way: usize) -> &mut CacheBlock {
        &mut self.sets[set][way]
    }

    /// Reconstructs the block base address of the block at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid.
    #[must_use]
    pub fn block_address(&self, set: usize, way: usize) -> u64 {
        let b = &self.sets[set][way];
        assert!(b.is_valid(), "block ({set},{way}) is invalid");
        self.geo.address_of(b.tag(), set)
    }

    /// The address of word `w` of the block at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is invalid or `w` out of range.
    #[must_use]
    pub fn word_address(&self, set: usize, way: usize, w: usize) -> u64 {
        assert!(w < self.geo.words_per_block(), "word {w} out of range");
        self.block_address(set, way) + (w * WORD_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    fn small() -> (Cache, MainMemory) {
        let geo = CacheGeometry::new(256, 2, 32).unwrap(); // 4 sets
        (Cache::new(geo, ReplacementPolicy::Lru), MainMemory::new())
    }

    #[test]
    fn store_then_load_hits() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 7, &mut m);
        assert_eq!(c.load_word(0x40, &mut m), 7);
        assert_eq!(c.stats().store_misses, 1);
        assert_eq!(c.stats().load_hits, 1);
        assert_eq!(c.dirty_word_count(), 1);
    }

    #[test]
    fn dirty_data_not_in_memory_until_eviction() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 7, &mut m);
        assert_eq!(m.peek_word(0x40), 0, "write-back: memory stale");
        // Evict set 2 (0x40 >> 5 = 2) by touching two more blocks mapping there.
        c.load_word(0x40 + 256, &mut m);
        c.load_word(0x40 + 512, &mut m);
        assert_eq!(m.peek_word(0x40), 7, "write-back happened on eviction");
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.dirty_word_count(), 0);
    }

    #[test]
    fn store_to_dirty_counted() {
        let (mut c, mut m) = small();
        c.store_word(0x40, 1, &mut m);
        assert_eq!(c.stats().stores_to_dirty, 0);
        c.store_word(0x40, 2, &mut m);
        assert_eq!(c.stats().stores_to_dirty, 1);
        // A different word in the same block is a fresh dirty word.
        c.store_word(0x48, 3, &mut m);
        assert_eq!(c.stats().stores_to_dirty, 1);
        assert_eq!(c.dirty_word_count(), 2);
    }

    #[test]
    fn store_byte_merges() {
        let (mut c, mut m) = small();
        m.write_word(0x40, 0x1111_1111_1111_1111);
        c.store_byte(0x42, 0xAB, &mut m);
        assert_eq!(c.load_word(0x40, &mut m), 0x1111_1111_11AB_1111);
    }

    #[test]
    fn flush_writes_everything() {
        let (mut c, mut m) = small();
        c.store_word(0x00, 1, &mut m);
        c.store_word(0x20, 2, &mut m);
        c.store_word(0x48, 3, &mut m);
        c.flush(&mut m);
        assert_eq!(m.peek_word(0x00), 1);
        assert_eq!(m.peek_word(0x20), 2);
        assert_eq!(m.peek_word(0x48), 3);
        assert_eq!(c.dirty_word_count(), 0);
        // Data still resident after flush:
        assert_eq!(c.peek_word(0x48), Some(3));
    }

    #[test]
    fn clean_eviction_counted() {
        let (mut c, mut m) = small();
        c.load_word(0x40, &mut m);
        c.load_word(0x40 + 256, &mut m);
        c.load_word(0x40 + 512, &mut m);
        assert_eq!(c.stats().clean_evictions, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn iter_dirty_words_finds_all() {
        let (mut c, mut m) = small();
        c.store_word(0x00, 11, &mut m);
        c.store_word(0x58, 22, &mut m);
        let dirty: Vec<u64> = c.iter_dirty_words().map(|(_, _, _, v)| v).collect();
        assert_eq!(dirty.len(), 2);
        assert!(dirty.contains(&11) && dirty.contains(&22));
    }

    #[test]
    fn write_block_marks_masked_words() {
        let (mut c, mut m) = small();
        let (_, any_dirty) = c.write_block(0x40, &[1, 2, 3, 4], 0b0110, &mut m);
        assert!(!any_dirty);
        assert_eq!(c.peek_word(0x48), Some(2));
        assert_eq!(c.peek_word(0x40), Some(0), "unmasked word keeps fill data");
        assert_eq!(c.dirty_word_count(), 2);
        // Second write over the same words reports dirtiness.
        let (_, any_dirty) = c.write_block(0x40, &[9, 9, 9, 9], 0b0010, &mut m);
        assert!(any_dirty);
        assert_eq!(c.stats().stores_to_dirty, 1);
    }

    #[test]
    fn lru_keeps_hot_block() {
        let (mut c, mut m) = small();
        c.load_word(0x40, &mut m); // A
        c.load_word(0x40 + 256, &mut m); // B
        c.load_word(0x40, &mut m); // touch A
        c.load_word(0x40 + 512, &mut m); // C evicts B
        assert!(c.probe(0x40).is_some(), "A stays");
        assert!(c.probe(0x40 + 256).is_none(), "B evicted");
    }

    #[test]
    fn word_address_roundtrip() {
        let (mut c, mut m) = small();
        c.store_word(0x1248, 5, &mut m);
        let (set, way) = c.probe(0x1248).unwrap();
        let w = c.geometry().word_index(0x1248);
        assert_eq!(c.word_address(set, way, w), 0x1248);
    }

    /// Functional transparency: a cache + memory must behave exactly like
    /// a flat memory for any access sequence.
    #[test]
    fn randomised_vs_flat_memory_oracle() {
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        let geo = CacheGeometry::new(512, 2, 32).unwrap();
        let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
        let mut mem = MainMemory::new();
        let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let addr = (rng.random_range(0..4096u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                cache.store_word(addr, v, &mut mem);
                oracle.insert(addr, v);
            } else {
                let got = cache.load_word(addr, &mut mem);
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "addr {addr:#x}");
            }
        }
        cache.flush(&mut mem);
        for (addr, v) in oracle {
            assert_eq!(m_peek(&mem, addr), v);
        }
        fn m_peek(m: &MainMemory, a: u64) -> u64 {
            m.peek_word(a)
        }
    }

    #[test]
    fn dirty_count_matches_iteration() {
        let mut rng = StdRng::seed_from_u64(3);
        let geo = CacheGeometry::new(256, 2, 32).unwrap();
        let mut c = Cache::new(geo, ReplacementPolicy::Lru);
        let mut m = MainMemory::new();
        for _ in 0..500 {
            let addr = (rng.random_range(0..2048u64)) & !7;
            if rng.random_bool(0.5) {
                c.store_word(addr, rng.random(), &mut m);
            } else {
                c.load_word(addr, &mut m);
            }
            assert_eq!(c.dirty_word_count(), c.iter_dirty_words().count() as u64);
        }
    }

    #[test]
    fn prop_transparency() {
        let mut rng = StdRng::seed_from_u64(0xCAC4_0001);
        for _ in 0..64 {
            let geo = CacheGeometry::new(256, 2, 32).unwrap();
            let mut cache = Cache::new(geo, ReplacementPolicy::Fifo);
            let mut mem = MainMemory::new();
            let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            for _ in 0..rng.random_range(1usize..200) {
                let addr = u64::from(rng.random::<u64>() as u16) & !7;
                if rng.random_bool(0.5) {
                    let v = rng.random::<u64>();
                    cache.store_word(addr, v, &mut mem);
                    oracle.insert(addr, v);
                } else {
                    assert_eq!(
                        cache.load_word(addr, &mut mem),
                        *oracle.get(&addr).unwrap_or(&0),
                        "addr {addr:#x}"
                    );
                }
            }
        }
    }
}
