//! Global observability for the cache hierarchy.
//!
//! Per-instance [`CacheStats`] bundles remain
//! the source of truth for experiments (they merge, reset and feed the
//! energy model); this module additionally publishes per-level **deltas**
//! into the process-wide `cppc-obs` registry so `cppc-cli stats` can
//! show where hierarchy traffic went. Deltas are published once per
//! [`run`](crate::hierarchy::TwoLevelHierarchy::run) call — a choke
//! point — so the per-access hot path carries no extra work at all.

use crate::stats::CacheStats;
use cppc_obs::Counter;

cppc_obs::metrics! {
    group L1_METRICS: "cache.l1", "L1 data cache events (published per hierarchy run).";
    counter L1_LOAD_HITS: "cache.l1.load_hits", "events", "Loads served by the L1 without going below.";
    counter L1_LOAD_MISSES: "cache.l1.load_misses", "events", "Loads that missed the L1 and fetched from L2.";
    counter L1_STORE_HITS: "cache.l1.store_hits", "events", "Stores absorbed by a resident L1 block.";
    counter L1_STORE_MISSES: "cache.l1.store_misses", "events", "Stores that write-allocated an L1 block first.";
    counter L1_WRITEBACKS: "cache.l1.writebacks", "events", "Dirty L1 victim blocks pushed down to the L2.";
    counter L1_FILLS: "cache.l1.fills", "events", "Blocks installed into the L1 on misses.";
}

cppc_obs::metrics! {
    group L2_METRICS: "cache.l2", "L2 cache events (published per hierarchy run).";
    counter L2_LOAD_HITS: "cache.l2.load_hits", "events", "L1 miss fetches served by the L2.";
    counter L2_LOAD_MISSES: "cache.l2.load_misses", "events", "L1 miss fetches that also missed the L2.";
    counter L2_STORE_HITS: "cache.l2.store_hits", "events", "L1 write-backs absorbed by a resident L2 block.";
    counter L2_STORE_MISSES: "cache.l2.store_misses", "events", "L1 write-backs that write-allocated an L2 block.";
    counter L2_WRITEBACKS: "cache.l2.writebacks", "events", "Dirty L2 victim blocks pushed down a level.";
    counter L2_FILLS: "cache.l2.fills", "events", "Blocks installed into the L2 on misses.";
}

cppc_obs::metrics! {
    group HOTPATH_METRICS: "cache.hotpath", "Allocation-free hot-path events (published per hierarchy run).";
    counter SCRATCH_REUSE: "cache.scratch_reuse", "events", "Block fetches served into reused buffers (cache arena slots or caller-provided scratch) instead of fresh allocations.";
}

cppc_obs::metrics! {
    group L3_METRICS: "cache.l3", "L3 cache events (three-level hierarchy runs only).";
    counter L3_LOAD_HITS: "cache.l3.load_hits", "events", "L2 miss fetches served by the L3.";
    counter L3_LOAD_MISSES: "cache.l3.load_misses", "events", "L2 miss fetches that went to main memory.";
    counter L3_STORE_HITS: "cache.l3.store_hits", "events", "L2 write-backs absorbed by a resident L3 block.";
    counter L3_STORE_MISSES: "cache.l3.store_misses", "events", "L2 write-backs that write-allocated an L3 block.";
    counter L3_WRITEBACKS: "cache.l3.writebacks", "events", "Dirty L3 victim blocks written to main memory.";
    counter L3_FILLS: "cache.l3.fills", "events", "Blocks installed into the L3 on misses.";
}

struct LevelCounters {
    load_hits: &'static Counter,
    load_misses: &'static Counter,
    store_hits: &'static Counter,
    store_misses: &'static Counter,
    writebacks: &'static Counter,
    fills: &'static Counter,
}

static LEVELS: [LevelCounters; 3] = [
    LevelCounters {
        load_hits: &L1_LOAD_HITS,
        load_misses: &L1_LOAD_MISSES,
        store_hits: &L1_STORE_HITS,
        store_misses: &L1_STORE_MISSES,
        writebacks: &L1_WRITEBACKS,
        fills: &L1_FILLS,
    },
    LevelCounters {
        load_hits: &L2_LOAD_HITS,
        load_misses: &L2_LOAD_MISSES,
        store_hits: &L2_STORE_HITS,
        store_misses: &L2_STORE_MISSES,
        writebacks: &L2_WRITEBACKS,
        fills: &L2_FILLS,
    },
    LevelCounters {
        load_hits: &L3_LOAD_HITS,
        load_misses: &L3_LOAD_MISSES,
        store_hits: &L3_STORE_HITS,
        store_misses: &L3_STORE_MISSES,
        writebacks: &L3_WRITEBACKS,
        fills: &L3_FILLS,
    },
];

/// Registers the cache metric groups (idempotent). Called from the
/// publish path and from `cppc-cli`'s describe mode.
pub fn register_metrics() {
    L1_METRICS.register();
    L2_METRICS.register();
    L3_METRICS.register();
    HOTPATH_METRICS.register();
}

/// Publishes the growth of a scratch-reuse counter between two snapshots
/// (saturating, like [`publish_level_delta`]).
pub fn publish_scratch_delta(before: u64, after: u64) {
    register_metrics();
    SCRATCH_REUSE.add(after.saturating_sub(before));
}

/// Publishes the difference between two stat snapshots of cache level
/// `level` (1-based) into the global registry. Counters that went
/// backwards (stats were reset mid-run) contribute nothing.
pub fn publish_level_delta(level: usize, before: &CacheStats, after: &CacheStats) {
    assert!((1..=LEVELS.len()).contains(&level), "level out of range");
    register_metrics();
    let c = &LEVELS[level - 1];
    c.load_hits
        .add(after.load_hits.saturating_sub(before.load_hits));
    c.load_misses
        .add(after.load_misses.saturating_sub(before.load_misses));
    c.store_hits
        .add(after.store_hits.saturating_sub(before.store_hits));
    c.store_misses
        .add(after.store_misses.saturating_sub(before.store_misses));
    c.writebacks
        .add(after.writebacks.saturating_sub(before.writebacks));
    c.fills.add(after.fills.saturating_sub(before.fills));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_publication_is_monotonic_and_safe() {
        register_metrics();
        let after = CacheStats {
            load_hits: 5,
            writebacks: 2,
            ..CacheStats::default()
        };
        let before = CacheStats::default();
        let h0 = L1_LOAD_HITS.get();
        let w0 = L1_WRITEBACKS.get();
        publish_level_delta(1, &before, &after);
        // Reversed order must not underflow (e.g. reset between snaps).
        publish_level_delta(1, &after, &before);
        if cfg!(feature = "obs") {
            assert_eq!(L1_LOAD_HITS.get(), h0 + 5);
            assert_eq!(L1_WRITEBACKS.get(), w0 + 2);
        }
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn level_zero_rejected() {
        publish_level_delta(0, &CacheStats::default(), &CacheStats::default());
    }
}
