//! Two-level (L1 + L2 + memory) functional hierarchy.
//!
//! Runs memory operations through an L1 backed by an L2 backed by main
//! memory, collecting per-level statistics plus the two measurements the
//! paper's reliability model needs (Table 2):
//!
//! * **dirty residency** — periodic samples of how many words are dirty;
//! * **Tavg** — the mean interval between consecutive accesses to the
//!   same dirty word (L1) or dirty block (L2).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::batch::{self, OpBatch};
use crate::cache::{Backing, Cache};
use crate::geometry::CacheGeometry;
use crate::memory::MainMemory;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// One memory operation of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A 64-bit load.
    Load(u64),
    /// A 64-bit store of the given value.
    Store(u64, u64),
    /// A single-byte (partial) store — the access class that forces
    /// read-modify-writes on block-ECC schemes (paper §1) and exercises
    /// CPPC's byte path (§3.1).
    StoreByte(u64, u8),
}

impl MemOp {
    /// The byte address this operation touches.
    #[must_use]
    pub fn addr(&self) -> u64 {
        match *self {
            MemOp::Load(a) | MemOp::Store(a, _) => a,
            MemOp::StoreByte(a, _) => a,
        }
    }

    /// `true` for stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, MemOp::Store(..) | MemOp::StoreByte(..))
    }
}

/// A multiply-mix hasher for the word-key maps on the drive hot path.
/// Keys are already well-distributed word addresses, not attacker
/// input, so SipHash's collision resistance buys nothing here — this
/// single multiply + xor-shift cuts a measurable slice off every store
/// the hierarchy simulates. Only the map's bucketing depends on it, so
/// swapping hashers cannot change any statistic.
#[derive(Debug, Clone, Copy, Default)]
struct WordKeyHasher(u64);

impl Hasher for WordKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed (via `write_u64`); a generic
        // byte path would be dead code on this map.
        debug_assert!(bytes.len() == 8, "WordKeyHasher hashes u64 keys only");
        let mut buf = [0u8; 8];
        buf[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        self.write_u64(u64::from_le_bytes(buf));
    }

    fn write_u64(&mut self, key: u64) {
        let mut h = (self.0 ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Tracks intervals between consecutive accesses to currently-dirty
/// entities (words or blocks), producing the paper's `Tavg`.
#[derive(Debug, Clone, Default)]
struct DirtyIntervalTracker {
    last_touch: HashMap<u64, u64, BuildHasherDefault<WordKeyHasher>>,
    interval_sum: u128,
    interval_count: u64,
}

impl DirtyIntervalTracker {
    /// Records an access at `now` to `key`, which is dirty *after* the
    /// access if `dirty_after` (stores make words dirty; loads leave
    /// state unchanged).
    fn touch(&mut self, key: u64, now: u64, dirty_after: bool) {
        // One hash lookup per touch: a tracked key always refreshes its
        // stamp (dirty stays dirty on a load), an untracked one starts
        // being tracked only once a store dirties it.
        match self.last_touch.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                self.interval_sum += u128::from(now - *e.get());
                self.interval_count += 1;
                e.insert(now);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if dirty_after {
                    e.insert(now);
                }
            }
        }
    }

    fn forget(&mut self, key: u64) {
        self.last_touch.remove(&key);
    }

    fn tavg(&self) -> Option<f64> {
        if self.interval_count == 0 {
            None
        } else {
            Some(self.interval_sum as f64 / self.interval_count as f64)
        }
    }
}

/// An L1 + L2 + memory functional simulator.
///
/// Both levels must share the same block size (as in the paper's Table 1
/// configuration, 32-byte lines at both levels).
///
/// # Example
///
/// ```
/// use cppc_cache_sim::hierarchy::{MemOp, TwoLevelHierarchy};
/// use cppc_cache_sim::{CacheGeometry, ReplacementPolicy};
///
/// let l1 = CacheGeometry::new(32 * 1024, 2, 32)?;
/// let l2 = CacheGeometry::new(1024 * 1024, 4, 32)?;
/// let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
/// h.run([MemOp::Store(0x100, 42), MemOp::Load(0x100)]);
/// assert_eq!(h.l1().stats().load_hits, 1);
/// # Ok::<(), cppc_cache_sim::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelHierarchy {
    l1: Cache,
    l2: Cache,
    mem: MainMemory,
    cycle: u64,
    cycles_per_op: u64,
    sample_interval: u64,
    ops_since_sample: u64,
    l1_intervals: DirtyIntervalTracker,
    l2_intervals: DirtyIntervalTracker,
}

struct L2Backing<'a> {
    l2: &'a mut Cache,
    mem: &'a mut MainMemory,
    intervals: &'a mut DirtyIntervalTracker,
    cycle: u64,
}

impl Backing for L2Backing<'_> {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        debug_assert_eq!(buf.len(), self.l2.geometry().words_per_block());
        // An L1 miss that hits a dirty L2 block is an access to dirty L2
        // data for Tavg purposes.
        let dirty_before = self
            .l2
            .probe(base)
            .map(|(s, w)| self.l2.block(s, w).is_dirty())
            .unwrap_or(false);
        if dirty_before {
            self.intervals.touch(base, self.cycle, true);
        }
        self.l2.read_block_into(base, self.mem, buf);
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        let _ = self.l2.write_block(base, data, dirty_mask, self.mem);
        self.intervals.touch(base, self.cycle, true);
    }
}

impl TwoLevelHierarchy {
    /// Builds the hierarchy with empty caches and zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if the two levels have different block sizes.
    #[must_use]
    pub fn new(l1_geo: CacheGeometry, l2_geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        assert_eq!(
            l1_geo.block_bytes(),
            l2_geo.block_bytes(),
            "L1 and L2 must share a block size"
        );
        TwoLevelHierarchy {
            l1: Cache::new(l1_geo, policy),
            l2: Cache::new(l2_geo, policy),
            mem: MainMemory::new(),
            cycle: 0,
            cycles_per_op: 1,
            sample_interval: 1024,
            ops_since_sample: 0,
            l1_intervals: DirtyIntervalTracker::default(),
            l2_intervals: DirtyIntervalTracker::default(),
        }
    }

    /// Sets how many cycles each trace operation advances the clock
    /// (use the workload's cycles-per-memory-op estimate so Tavg comes
    /// out in cycles, as in Table 2).
    pub fn set_cycles_per_op(&mut self, cycles: u64) {
        assert!(cycles > 0, "cycles per op must be positive");
        self.cycles_per_op = cycles;
    }

    /// Sets the dirty-residency sampling interval in operations.
    pub fn set_sample_interval(&mut self, ops: u64) {
        assert!(ops > 0, "sample interval must be positive");
        self.sample_interval = ops;
    }

    /// Executes one operation.
    pub fn step(&mut self, op: MemOp) -> u64 {
        self.cycle += self.cycles_per_op;
        let addr = op.addr();
        let word_key = addr & !7;

        // Track L1 dirty-interval before the access mutates state.
        let l1_dirty_before = self
            .l1
            .probe(addr)
            .map(|(s, w)| {
                self.l1
                    .block(s, w)
                    .is_word_dirty(self.l1.geometry().word_index(addr))
            })
            .unwrap_or(false);

        let mut backing = L2Backing {
            l2: &mut self.l2,
            mem: &mut self.mem,
            intervals: &mut self.l2_intervals,
            cycle: self.cycle,
        };
        let result = match op {
            MemOp::Load(a) => {
                let v = self.l1.load_word(a, &mut backing);
                if l1_dirty_before {
                    self.l1_intervals.touch(word_key, self.cycle, true);
                }
                v
            }
            MemOp::Store(a, v) => {
                self.l1.store_word(a, v, &mut backing);
                self.l1_intervals.touch(word_key, self.cycle, true);
                0
            }
            MemOp::StoreByte(a, v) => {
                self.l1.store_byte(a, v, &mut backing);
                self.l1_intervals.touch(word_key, self.cycle, true);
                0
            }
        };

        self.ops_since_sample += 1;
        if self.ops_since_sample >= self.sample_interval {
            self.ops_since_sample = 0;
            let d1 = self.l1.dirty_word_count();
            let d2 = self.l2.dirty_word_count();
            self.l1.stats_mut().sample_dirty(d1);
            self.l2.stats_mut().sample_dirty(d2);
        }
        result
    }

    /// Runs a whole trace, publishing per-level stat deltas to the
    /// global [`obs`](crate::obs) registry once at the end.
    pub fn run<I: IntoIterator<Item = MemOp>>(&mut self, trace: I) {
        let (l1_before, l2_before) = self.stats();
        let scratch_before = self.l1.scratch_reuse() + self.l2.scratch_reuse();
        for op in trace {
            self.step(op);
        }
        let (l1_after, l2_after) = self.stats();
        crate::obs::publish_level_delta(1, &l1_before, &l1_after);
        crate::obs::publish_level_delta(2, &l2_before, &l2_after);
        crate::obs::publish_scratch_delta(
            scratch_before,
            self.l1.scratch_reuse() + self.l2.scratch_reuse(),
        );
    }

    /// Runs a pre-decoded [`OpBatch`] through the hierarchy — the trace
    /// timing fast path.
    ///
    /// State and statistics come out bit-identical to feeding the same
    /// operations through [`TwoLevelHierarchy::step`] one at a time
    /// (pinned by differential tests). The speedup comes from the loop
    /// shape: geometry and configuration loads are hoisted out of the
    /// per-op path, the L1 hit path costs a single probe (`step`'s
    /// separate dirty-interval probe is folded into the hit check) with
    /// the full miss machinery entered only when that probe fails, and
    /// obs deltas publish once per batch instead of never (`step`) or
    /// once per iterator drain ([`TwoLevelHierarchy::run`]).
    pub fn run_batch(&mut self, batch: &OpBatch) {
        let (l1_before, l2_before) = self.stats();
        let scratch_before = self.l1.scratch_reuse() + self.l2.scratch_reuse();
        let cycles_per_op = self.cycles_per_op;
        let sample_interval = self.sample_interval;
        let l1_geo = *self.l1.geometry();
        let addrs = batch.addrs();
        let kinds = batch.kinds();
        let values = batch.values();
        for i in 0..batch.len() {
            let addr = addrs[i];
            let kind = kinds[i];
            self.cycle += cycles_per_op;
            let word_key = addr & !7;
            // One probe classifies the access *and* answers step()'s
            // dirty-before question; probe has no side effects, so
            // folding the two lookups preserves every counter.
            let hit = self.l1.probe(addr);
            match kind {
                batch::KIND_LOAD => {
                    if let Some((set, way)) = hit {
                        let w = l1_geo.word_index(addr);
                        let dirty_before = self.l1.block(set, way).is_word_dirty(w);
                        self.l1.record_access(false, true);
                        self.l1.touch(set, way);
                        if dirty_before {
                            self.l1_intervals.touch(word_key, self.cycle, true);
                        }
                    } else {
                        // Miss: a non-resident word is never dirty, so
                        // step()'s dirty-before branch cannot fire.
                        let mut backing = L2Backing {
                            l2: &mut self.l2,
                            mem: &mut self.mem,
                            intervals: &mut self.l2_intervals,
                            cycle: self.cycle,
                        };
                        let _ = self.l1.load_word(addr, &mut backing);
                    }
                }
                batch::KIND_STORE => {
                    if let Some((set, way)) = hit {
                        self.l1.record_access(true, true);
                        self.l1
                            .store_word_in_place(set, way, l1_geo.word_index(addr), values[i]);
                    } else {
                        let mut backing = L2Backing {
                            l2: &mut self.l2,
                            mem: &mut self.mem,
                            intervals: &mut self.l2_intervals,
                            cycle: self.cycle,
                        };
                        self.l1.store_word(addr, values[i], &mut backing);
                    }
                    self.l1_intervals.touch(word_key, self.cycle, true);
                }
                batch::KIND_STORE_BYTE => {
                    if let Some((set, way)) = hit {
                        self.l1.record_access(true, true);
                        self.l1.store_byte_in_place(
                            set,
                            way,
                            l1_geo.word_index(addr),
                            l1_geo.byte_in_word(addr),
                            values[i] as u8,
                        );
                    } else {
                        let mut backing = L2Backing {
                            l2: &mut self.l2,
                            mem: &mut self.mem,
                            intervals: &mut self.l2_intervals,
                            cycle: self.cycle,
                        };
                        self.l1.store_byte(addr, values[i] as u8, &mut backing);
                    }
                    self.l1_intervals.touch(word_key, self.cycle, true);
                }
                k => unreachable!("invalid op kind {k}"),
            }
            self.ops_since_sample += 1;
            if self.ops_since_sample >= sample_interval {
                self.ops_since_sample = 0;
                let d1 = self.l1.dirty_word_count();
                let d2 = self.l2.dirty_word_count();
                self.l1.stats_mut().sample_dirty(d1);
                self.l2.stats_mut().sample_dirty(d2);
            }
        }
        let (l1_after, l2_after) = self.stats();
        crate::obs::publish_level_delta(1, &l1_before, &l1_after);
        crate::obs::publish_level_delta(2, &l2_before, &l2_after);
        crate::obs::publish_scratch_delta(
            scratch_before,
            self.l1.scratch_reuse() + self.l2.scratch_reuse(),
        );
    }

    /// Zeroes both levels' statistics (cache contents and the clock are
    /// untouched) — call after a warm-up phase so measurements reflect
    /// steady state rather than compulsory misses.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.ops_since_sample = 0;
    }

    /// The L1 cache.
    #[must_use]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache.
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The backing memory.
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Mean interval (cycles) between consecutive accesses to the same
    /// dirty L1 word, if any dirty word was ever re-accessed.
    #[must_use]
    pub fn l1_tavg(&self) -> Option<f64> {
        self.l1_intervals.tavg()
    }

    /// Mean interval (cycles) between consecutive accesses to the same
    /// dirty L2 block.
    #[must_use]
    pub fn l2_tavg(&self) -> Option<f64> {
        self.l2_intervals.tavg()
    }

    /// Mean fraction of L1 words dirty across samples (Table 2's
    /// "percentage of dirty data", as a 0..1 fraction).
    #[must_use]
    pub fn l1_dirty_fraction(&self) -> f64 {
        self.l1.stats().mean_dirty_words() / self.l1.geometry().total_words() as f64
    }

    /// Mean fraction of L2 words dirty across samples.
    #[must_use]
    pub fn l2_dirty_fraction(&self) -> f64 {
        self.l2.stats().mean_dirty_words() / self.l2.geometry().total_words() as f64
    }

    /// Convenience: `(l1_stats, l2_stats)` snapshot.
    #[must_use]
    pub fn stats(&self) -> (CacheStats, CacheStats) {
        (*self.l1.stats(), *self.l2.stats())
    }

    /// Forgets interval stamps for evicted L1 words — exposed for tests;
    /// in normal operation stale stamps only add slack to Tavg when a
    /// word is re-fetched and re-dirtied, which mirrors the paper's
    /// access-interval definition closely enough.
    pub fn forget_l1_word(&mut self, word_addr: u64) {
        self.l1_intervals.forget(word_addr & !7);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    fn tiny() -> TwoLevelHierarchy {
        let l1 = CacheGeometry::new(256, 2, 32).unwrap();
        let l2 = CacheGeometry::new(1024, 2, 32).unwrap();
        TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru)
    }

    #[test]
    fn store_load_roundtrip() {
        let mut h = tiny();
        h.step(MemOp::Store(0x100, 77));
        assert_eq!(h.step(MemOp::Load(0x100)), 77);
    }

    #[test]
    fn l1_miss_fills_l2_first() {
        let mut h = tiny();
        h.step(MemOp::Load(0x100));
        assert_eq!(h.l1().stats().load_misses, 1);
        assert_eq!(h.l2().stats().load_misses, 1);
        h.step(MemOp::Load(0x108)); // same block: L1 hit
        assert_eq!(h.l1().stats().load_hits, 1);
        assert_eq!(h.l2().stats().loads(), 1, "no extra L2 access");
    }

    #[test]
    fn l1_writeback_lands_in_l2_not_memory() {
        let mut h = tiny();
        h.step(MemOp::Store(0x40, 5));
        // Force the L1 set to turn over (set count = 4 blocks apart 256B):
        h.step(MemOp::Load(0x40 + 256));
        h.step(MemOp::Load(0x40 + 512));
        assert_eq!(h.l1().stats().writebacks, 1);
        assert_eq!(h.memory().peek_word(0x40), 0, "L2 absorbed the write-back");
        assert_eq!(h.l2().peek_word(0x40), Some(5));
    }

    #[test]
    fn value_survives_both_levels() {
        let mut h = tiny();
        h.step(MemOp::Store(0x40, 123));
        // Thrash both levels thoroughly.
        for i in 0..64u64 {
            h.step(MemOp::Load(0x1000 + i * 32));
        }
        assert_eq!(h.step(MemOp::Load(0x40)), 123);
    }

    #[test]
    fn tavg_measured_for_reused_dirty_words() {
        let mut h = tiny();
        h.set_cycles_per_op(10);
        h.step(MemOp::Store(0x40, 1)); // cycle 10, dirty
        h.step(MemOp::Load(0x200)); // cycle 20
        h.step(MemOp::Store(0x40, 2)); // cycle 30 → interval 20
        let tavg = h.l1_tavg().unwrap();
        assert!((tavg - 20.0).abs() < 1e-9, "tavg = {tavg}");
    }

    #[test]
    fn tavg_none_without_dirty_reuse() {
        let mut h = tiny();
        h.step(MemOp::Load(0x40));
        h.step(MemOp::Load(0x80));
        assert!(h.l1_tavg().is_none());
    }

    #[test]
    fn dirty_fraction_sampled() {
        let mut h = tiny();
        h.set_sample_interval(1);
        h.step(MemOp::Store(0x40, 1));
        // 1 dirty word / 32 total words
        assert!((h.l1_dirty_fraction() - 1.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn randomised_transparency_through_two_levels() {
        let mut rng = StdRng::seed_from_u64(0x11EE);
        let mut h = tiny();
        let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let addr = (rng.random_range(0..8192u64)) & !7;
            if rng.random_bool(0.35) {
                let v: u64 = rng.random();
                h.step(MemOp::Store(addr, v));
                oracle.insert(addr, v);
            } else {
                let got = h.step(MemOp::Load(addr));
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "addr {addr:#x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "share a block size")]
    fn mismatched_block_sizes_panic() {
        let l1 = CacheGeometry::new(256, 2, 32).unwrap();
        let l2 = CacheGeometry::new(1024, 2, 64).unwrap();
        let _ = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
    }

    fn random_ops(seed: u64, n: usize) -> Vec<MemOp> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let addr = rng.random_range(0..16384u64);
                match rng.random_range(0..4u32) {
                    0 => MemOp::Store(addr & !7, rng.random()),
                    1 => MemOp::StoreByte(addr, rng.random::<u64>() as u8),
                    _ => MemOp::Load(addr & !7),
                }
            })
            .collect()
    }

    #[test]
    fn run_batch_matches_step_bit_for_bit() {
        let ops = random_ops(0xBA7C4, 40_000);
        let mut stepped = tiny();
        stepped.set_cycles_per_op(3);
        stepped.set_sample_interval(7);
        let mut batched = stepped.clone();
        for &op in &ops {
            stepped.step(op);
        }
        // Uneven chunk sizes so batch boundaries cross the sampling
        // cadence in every phase.
        let mut batch = crate::batch::OpBatch::new();
        for chunk in ops.chunks(513) {
            batch.clear();
            batch.extend_from_ops(chunk);
            batched.run_batch(&batch);
        }
        assert_eq!(stepped.stats(), batched.stats());
        assert_eq!(stepped.cycle(), batched.cycle());
        assert_eq!(stepped.l1_tavg(), batched.l1_tavg());
        assert_eq!(stepped.l2_tavg(), batched.l2_tavg());
        assert_eq!(stepped.l1_dirty_fraction(), batched.l1_dirty_fraction());
        assert_eq!(stepped.l2_dirty_fraction(), batched.l2_dirty_fraction());
        for addr in (0..16384u64).step_by(8) {
            assert_eq!(
                stepped.l1().peek_word(addr),
                batched.l1().peek_word(addr),
                "L1 word {addr:#x}"
            );
            assert_eq!(
                stepped.l2().peek_word(addr),
                batched.l2().peek_word(addr),
                "L2 word {addr:#x}"
            );
            assert_eq!(
                stepped.memory().peek_word(addr),
                batched.memory().peek_word(addr),
                "memory word {addr:#x}"
            );
        }
    }

    #[test]
    fn run_batch_matches_run() {
        let ops = random_ops(0x5EED, 10_000);
        let mut iterated = tiny();
        let mut batched = tiny();
        iterated.run(ops.iter().copied());
        batched.run_batch(&crate::batch::OpBatch::from_ops(&ops));
        assert_eq!(iterated.stats(), batched.stats());
        assert_eq!(iterated.cycle(), batched.cycle());
    }

    #[test]
    fn memop_accessors() {
        assert_eq!(MemOp::Load(8).addr(), 8);
        assert!(MemOp::Store(8, 1).is_store());
        assert!(!MemOp::Load(8).is_store());
    }
}
