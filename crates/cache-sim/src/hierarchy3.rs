//! Three-level (L1 + L2 + L3 + memory) functional hierarchy.
//!
//! The paper's §7 expects "the energy overhead of an L3 CPPC to be even
//! less" than the L2's 7%, because read-before-write operations become
//! rarer the further the store stream is filtered. This hierarchy
//! produces the per-level statistics that test the claim.

use crate::cache::{Backing, Cache};
use crate::geometry::CacheGeometry;
use crate::hierarchy::MemOp;
use crate::memory::MainMemory;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// An L1 + L2 + L3 + memory functional simulator. All levels share one
/// block size.
#[derive(Debug, Clone)]
pub struct ThreeLevelHierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    mem: MainMemory,
    ops: u64,
    sample_interval: u64,
    ops_since_sample: u64,
}

struct L3Backing<'a> {
    l3: &'a mut Cache,
    mem: &'a mut MainMemory,
}

impl Backing for L3Backing<'_> {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        debug_assert_eq!(buf.len(), self.l3.geometry().words_per_block());
        self.l3.read_block_into(base, self.mem, buf);
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        let _ = self.l3.write_block(base, data, dirty_mask, self.mem);
    }
}

struct L2Backing<'a> {
    l2: &'a mut Cache,
    l3: &'a mut Cache,
    mem: &'a mut MainMemory,
}

impl Backing for L2Backing<'_> {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        debug_assert_eq!(buf.len(), self.l2.geometry().words_per_block());
        let mut lower = L3Backing {
            l3: self.l3,
            mem: self.mem,
        };
        self.l2.read_block_into(base, &mut lower, buf);
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        let mut lower = L3Backing {
            l3: self.l3,
            mem: self.mem,
        };
        let _ = self.l2.write_block(base, data, dirty_mask, &mut lower);
    }
}

impl ThreeLevelHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the levels disagree on block size.
    #[must_use]
    pub fn new(
        l1_geo: CacheGeometry,
        l2_geo: CacheGeometry,
        l3_geo: CacheGeometry,
        policy: ReplacementPolicy,
    ) -> Self {
        assert_eq!(l1_geo.block_bytes(), l2_geo.block_bytes(), "block sizes");
        assert_eq!(l2_geo.block_bytes(), l3_geo.block_bytes(), "block sizes");
        ThreeLevelHierarchy {
            l1: Cache::new(l1_geo, policy),
            l2: Cache::new(l2_geo, policy),
            l3: Cache::new(l3_geo, policy),
            mem: MainMemory::new(),
            ops: 0,
            sample_interval: 1024,
            ops_since_sample: 0,
        }
    }

    /// Executes one operation.
    pub fn step(&mut self, op: MemOp) -> u64 {
        self.ops += 1;
        let mut backing = L2Backing {
            l2: &mut self.l2,
            l3: &mut self.l3,
            mem: &mut self.mem,
        };
        let result = match op {
            MemOp::Load(a) => self.l1.load_word(a, &mut backing),
            MemOp::Store(a, v) => {
                self.l1.store_word(a, v, &mut backing);
                0
            }
            MemOp::StoreByte(a, v) => {
                self.l1.store_byte(a, v, &mut backing);
                0
            }
        };
        self.ops_since_sample += 1;
        if self.ops_since_sample >= self.sample_interval {
            self.ops_since_sample = 0;
            let (d1, d2, d3) = (
                self.l1.dirty_word_count(),
                self.l2.dirty_word_count(),
                self.l3.dirty_word_count(),
            );
            self.l1.stats_mut().sample_dirty(d1);
            self.l2.stats_mut().sample_dirty(d2);
            self.l3.stats_mut().sample_dirty(d3);
        }
        result
    }

    /// Runs a whole trace, publishing per-level stat deltas to the
    /// global [`obs`](crate::obs) registry once at the end.
    pub fn run<I: IntoIterator<Item = MemOp>>(&mut self, trace: I) {
        let (l1_before, l2_before, l3_before) = self.stats();
        let scratch_before =
            self.l1.scratch_reuse() + self.l2.scratch_reuse() + self.l3.scratch_reuse();
        for op in trace {
            self.step(op);
        }
        let (l1_after, l2_after, l3_after) = self.stats();
        crate::obs::publish_level_delta(1, &l1_before, &l1_after);
        crate::obs::publish_level_delta(2, &l2_before, &l2_after);
        crate::obs::publish_level_delta(3, &l3_before, &l3_after);
        crate::obs::publish_scratch_delta(
            scratch_before,
            self.l1.scratch_reuse() + self.l2.scratch_reuse() + self.l3.scratch_reuse(),
        );
    }

    /// Zeroes all statistics (contents untouched).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.ops_since_sample = 0;
    }

    /// The L1 cache.
    #[must_use]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache.
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The L3 cache.
    #[must_use]
    pub fn l3(&self) -> &Cache {
        &self.l3
    }

    /// The backing memory.
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// `(l1, l2, l3)` statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (*self.l1.stats(), *self.l2.stats(), *self.l3.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    fn tiny() -> ThreeLevelHierarchy {
        ThreeLevelHierarchy::new(
            CacheGeometry::new(256, 2, 32).unwrap(),
            CacheGeometry::new(1024, 2, 32).unwrap(),
            CacheGeometry::new(4096, 4, 32).unwrap(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn roundtrip_through_three_levels() {
        let mut h = tiny();
        h.step(MemOp::Store(0x100, 77));
        assert_eq!(h.step(MemOp::Load(0x100)), 77);
    }

    #[test]
    fn miss_cascades_down() {
        let mut h = tiny();
        h.step(MemOp::Load(0x100));
        assert_eq!(h.l1().stats().load_misses, 1);
        assert_eq!(h.l2().stats().load_misses, 1);
        assert_eq!(h.l3().stats().load_misses, 1);
        // Second block in the same L1 line: all levels hit or idle.
        h.step(MemOp::Load(0x108));
        assert_eq!(h.l1().stats().load_hits, 1);
        assert_eq!(h.l2().stats().loads(), 1);
    }

    #[test]
    fn writeback_cascade_reaches_l3_not_memory() {
        let mut h = tiny();
        h.step(MemOp::Store(0x40, 5));
        // Push it out of L1 (4 sets x 32B = 256B stride) and out of L2
        // (8 sets -> 1024B stride).
        for i in 1..=8u64 {
            h.step(MemOp::Load(0x40 + i * 256));
        }
        assert!(h.l1().stats().writebacks >= 1);
        assert_eq!(h.memory().peek_word(0x40), 0, "L2/L3 absorbed it");
        // Wherever it sits, loading it back returns the stored value.
        assert_eq!(h.step(MemOp::Load(0x40)), 5);
    }

    #[test]
    fn randomised_transparency() {
        let mut rng = StdRng::seed_from_u64(0x3133);
        let mut h = tiny();
        let mut oracle = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let addr = (rng.random_range(0..16384u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                h.step(MemOp::Store(addr, v));
                oracle.insert(addr, v);
            } else {
                assert_eq!(h.step(MemOp::Load(addr)), *oracle.get(&addr).unwrap_or(&0));
            }
        }
    }

    #[test]
    fn store_filtering_attenuates_down_the_hierarchy() {
        // The §7 intuition: when the write working set fits the upper
        // level, the L1 absorbs the re-store traffic and the lower
        // levels see almost no read-before-write events.
        let mut rng = StdRng::seed_from_u64(9);
        let mut h = tiny();
        for _ in 0..50_000 {
            if rng.random_bool(0.4) {
                // Hot store region: 2 blocks mapping to L1 sets 0-1,
                // which the loads below never touch — so the dirty
                // blocks are never evicted from L1.
                let addr = (rng.random_range(0..64u64)) & !7;
                h.step(MemOp::Store(addr, rng.random()));
            } else {
                // Loads confined to L1 sets 2-3 (offsets 0x40..0x7F of
                // each 256-byte stride).
                let stride = rng.random_range(0..32u64);
                let offset = 0x40 + (rng.random_range(0..0x40u64) & !7);
                h.step(MemOp::Load(stride * 256 + offset));
            }
        }
        let (l1, l2, l3) = h.stats();
        assert!(l1.stores_to_dirty > 1_000, "L1 absorbs the re-store stream");
        assert_eq!(l2.stores_to_dirty, 0, "nothing dirty ever reaches L2");
        assert_eq!(l3.stores_to_dirty, 0);
    }

    #[test]
    #[should_panic(expected = "block sizes")]
    fn mismatched_blocks_panic() {
        let _ = ThreeLevelHierarchy::new(
            CacheGeometry::new(256, 2, 32).unwrap(),
            CacheGeometry::new(1024, 2, 64).unwrap(),
            CacheGeometry::new(4096, 4, 32).unwrap(),
            ReplacementPolicy::Lru,
        );
    }
}
