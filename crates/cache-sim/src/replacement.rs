//! Replacement policies.
//!
//! Per-set replacement state lives in [`SetReplacementState`]; the cache
//! calls `touch` on every access and `victim` when it must evict. Random
//! replacement is deterministic (an xorshift stream seeded per cache) so
//! every experiment in the workspace is reproducible.

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the default, and what the paper's
    /// SimpleScalar configuration uses).
    #[default]
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (deterministic xorshift).
    Random,
}

/// Per-set replacement bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetReplacementState {
    policy: ReplacementPolicy,
    /// For LRU: order[0] is the most recently used way.
    /// For FIFO: order[0] is the most recently *filled* way.
    order: Vec<usize>,
    rng_state: u64,
}

impl SetReplacementState {
    /// Creates state for a set of `ways` ways. `seed` only matters for
    /// [`ReplacementPolicy::Random`].
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    #[must_use]
    pub fn new(policy: ReplacementPolicy, ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        SetReplacementState {
            policy,
            order: (0..ways).collect(),
            // xorshift must never be seeded with zero.
            rng_state: seed | 1,
        }
    }

    /// Copies `src`'s state into `self` without allocating. Used by
    /// snapshot restore, where both sides come from the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different way counts.
    pub fn copy_state_from(&mut self, src: &Self) {
        assert_eq!(
            self.order.len(),
            src.order.len(),
            "replacement state from a different geometry"
        );
        self.policy = src.policy;
        self.order.copy_from_slice(&src.order);
        self.rng_state = src.rng_state;
    }

    /// Records an access (hit) to `way`.
    pub fn touch(&mut self, way: usize) {
        if self.policy == ReplacementPolicy::Lru {
            self.promote(way);
        }
    }

    /// Records that `way` was just filled with a new block.
    pub fn filled(&mut self, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.promote(way),
            ReplacementPolicy::Random => {}
        }
    }

    fn promote(&mut self, way: usize) {
        if let Some(pos) = self.order.iter().position(|&w| w == way) {
            self.order.remove(pos);
            self.order.insert(0, way);
        }
    }

    /// Chooses the way to evict. Invalid ways should be preferred by the
    /// caller before consulting this.
    pub fn victim(&mut self) -> usize {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => *self
                .order
                .last()
                .expect("constructor guarantees non-empty order"),
            ReplacementPolicy::Random => {
                // xorshift64*
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.order.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        s.filled(0);
        s.filled(1);
        s.filled(2);
        s.filled(3);
        s.touch(0); // 0 becomes MRU; 1 is now LRU
        assert_eq!(s.victim(), 1);
        s.touch(1);
        assert_eq!(s.victim(), 2);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut s = SetReplacementState::new(ReplacementPolicy::Fifo, 3, 0);
        s.filled(0);
        s.filled(1);
        s.filled(2);
        s.touch(0); // must not promote under FIFO
        assert_eq!(s.victim(), 0, "oldest fill evicted regardless of touches");
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = SetReplacementState::new(ReplacementPolicy::Random, 4, 42);
        let mut b = SetReplacementState::new(ReplacementPolicy::Random, 4, 42);
        for _ in 0..100 {
            let (va, vb) = (a.victim(), b.victim());
            assert_eq!(va, vb);
            assert!(va < 4);
        }
    }

    #[test]
    fn random_differs_across_seeds() {
        let mut a = SetReplacementState::new(ReplacementPolicy::Random, 8, 1);
        let mut b = SetReplacementState::new(ReplacementPolicy::Random, 8, 2);
        let seq_a: Vec<usize> = (0..32).map(|_| a.victim()).collect();
        let seq_b: Vec<usize> = (0..32).map(|_| b.victim()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn single_way_always_victim_zero() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut s = SetReplacementState::new(policy, 1, 7);
            assert_eq!(s.victim(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = SetReplacementState::new(ReplacementPolicy::Lru, 0, 0);
    }

    #[test]
    fn lru_full_rotation() {
        let mut s = SetReplacementState::new(ReplacementPolicy::Lru, 2, 0);
        s.filled(0);
        s.filled(1);
        // Alternate touches; victim must always be the other way.
        for i in 0..10 {
            let way = i % 2;
            s.touch(way);
            assert_eq!(s.victim(), 1 - way);
        }
    }
}
