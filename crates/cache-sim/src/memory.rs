//! Paged main-memory backing store.
//!
//! Memory is the authoritative copy below the cache hierarchy: faults in
//! *clean* cache data are recovered by re-fetching from here (paper §3.2),
//! so the store holds real words, not placeholders.
//!
//! Storage is organised as 4 KiB pages: a page table maps page numbers to
//! slots in one flat word arena, allocated lazily on first non-zero
//! write. Block transfers inside one page (every power-of-two block up to
//! the page size, at an aligned base) are a single page lookup plus a
//! slice copy — no per-word hashing.

use std::collections::HashMap;

use crate::geometry::WORD_BYTES;

/// Bytes per storage page.
const PAGE_BYTES: u64 = 4096;
/// 64-bit words per storage page.
const PAGE_WORDS: usize = (PAGE_BYTES / WORD_BYTES as u64) as usize;

/// A sparse word-addressable main memory. Unwritten locations read as
/// zero, like freshly initialised DRAM in a functional simulator.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::memory::MainMemory;
///
/// let mut mem = MainMemory::new();
/// mem.write_word(0x40, 7);
/// assert_eq!(mem.read_word(0x40), 7);
/// assert_eq!(mem.read_word(0x48), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    /// Page number (`addr / PAGE_BYTES`) → slot index into `arena`.
    pages: HashMap<u64, usize>,
    /// Concatenated page frames, `PAGE_WORDS` words each.
    arena: Vec<u64>,
    /// Count of non-zero resident words (the footprint proxy).
    nonzero: usize,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        MainMemory::default()
    }

    #[inline]
    fn page_number(addr: u64) -> u64 {
        addr / PAGE_BYTES
    }

    /// Word offset of `addr` within its page.
    #[inline]
    fn page_word(addr: u64) -> usize {
        (addr % PAGE_BYTES) as usize / WORD_BYTES
    }

    /// The arena slice of the page holding `addr`, if allocated.
    #[inline]
    fn page(&self, addr: u64) -> Option<&[u64]> {
        let slot = *self.pages.get(&Self::page_number(addr))?;
        Some(&self.arena[slot * PAGE_WORDS..(slot + 1) * PAGE_WORDS])
    }

    /// The arena slice of the page holding `addr`, allocating a zeroed
    /// frame on first touch.
    fn page_mut(&mut self, addr: u64) -> &mut [u64] {
        let arena = &mut self.arena;
        let slot = *self
            .pages
            .entry(Self::page_number(addr))
            .or_insert_with(|| {
                arena.resize(arena.len() + PAGE_WORDS, 0);
                arena.len() / PAGE_WORDS - 1
            });
        &mut self.arena[slot * PAGE_WORDS..(slot + 1) * PAGE_WORDS]
    }

    /// Reads the 64-bit word containing `addr`.
    pub fn read_word(&mut self, addr: u64) -> u64 {
        self.reads += 1;
        self.peek_word(addr)
    }

    /// Reads without counting an access (for assertions/oracles).
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> u64 {
        self.page(addr).map_or(0, |p| p[Self::page_word(addr)])
    }

    /// Writes the 64-bit word containing `addr`.
    pub fn write_word(&mut self, addr: u64, value: u64) {
        self.writes += 1;
        if value == 0 && self.page(addr).is_none() {
            return; // zero store to an untouched page: nothing to record
        }
        let w = Self::page_word(addr);
        let page = self.page_mut(addr);
        let old = page[w];
        page[w] = value;
        match (old == 0, value == 0) {
            (true, false) => self.nonzero += 1,
            (false, true) => self.nonzero -= 1,
            _ => {}
        }
    }

    /// Reads a whole block of `buf.len()` 64-bit words starting at the
    /// block-aligned `base` into `buf`.
    pub fn read_block_into(&mut self, base: u64, buf: &mut [u64]) {
        self.reads += buf.len() as u64;
        if Self::page_number(base) == Self::page_number(base + (buf.len() * WORD_BYTES - 1) as u64)
        {
            // Entirely within one page: one lookup, one slice copy.
            let w = Self::page_word(base);
            match self.page(base) {
                Some(page) => buf.copy_from_slice(&page[w..w + buf.len()]),
                None => buf.fill(0),
            }
        } else {
            for (i, slot) in buf.iter_mut().enumerate() {
                *slot = self.peek_word(base + (i * WORD_BYTES) as u64);
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`MainMemory::read_block_into`].
    pub fn read_block(&mut self, base: u64, words: usize) -> Vec<u64> {
        let mut buf = vec![0u64; words];
        self.read_block_into(base, &mut buf);
        buf
    }

    /// Writes a whole block starting at the block-aligned `base`.
    pub fn write_block(&mut self, base: u64, data: &[u64]) {
        self.write_back_dirty(base, data, u64::MAX);
    }

    /// Writes back only the dirty words of a block (`mask` bit `i` set ⇔
    /// word `i` is dirty). Clean words are left untouched, which matters
    /// when the cache copy of a clean word has been corrupted: memory
    /// remains authoritative.
    pub fn write_back_dirty(&mut self, base: u64, data: &[u64], mask: u64) {
        let effective = if data.len() >= 64 {
            mask
        } else {
            mask & ((1 << data.len()) - 1)
        };
        if effective == 0 {
            return;
        }
        self.writes += u64::from(effective.count_ones());
        if Self::page_number(base) == Self::page_number(base + (data.len() * WORD_BYTES - 1) as u64)
        {
            let start = Self::page_word(base);
            let mut delta: isize = 0;
            let page = self.page_mut(base);
            for (i, &value) in data.iter().enumerate() {
                if effective >> i & 1 == 1 {
                    let old = page[start + i];
                    page[start + i] = value;
                    match (old == 0, value == 0) {
                        (true, false) => delta += 1,
                        (false, true) => delta -= 1,
                        _ => {}
                    }
                }
            }
            self.nonzero = self.nonzero.checked_add_signed(delta).expect("footprint");
        } else {
            for (i, &value) in data.iter().enumerate() {
                if effective >> i & 1 == 1 {
                    // write_word counts one write itself; compensate.
                    self.writes -= 1;
                    self.write_word(base + (i * WORD_BYTES) as u64, value);
                }
            }
        }
    }

    /// Captures the memory's complete state into a fresh
    /// [`crate::snapshot::MemorySnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> crate::snapshot::MemorySnapshot {
        let mut snap = crate::snapshot::MemorySnapshot::default();
        self.capture_snapshot(&mut snap);
        snap
    }

    /// Captures the memory's complete state into `snap`, reusing its
    /// buffers.
    pub fn capture_snapshot(&self, snap: &mut crate::snapshot::MemorySnapshot) {
        snap.pages.clone_from(&self.pages);
        snap.arena.clone_from(&self.arena);
        snap.nonzero = self.nonzero;
        snap.reads = self.reads;
        snap.writes = self.writes;
    }

    /// Restores the state captured by [`MainMemory::snapshot`].
    ///
    /// Allocation-free in steady state: when the page table still
    /// matches the snapshot's (the common case — trials read but rarely
    /// touch new pages), only the word arena is copied back in place.
    /// If the trial did allocate pages, the page table and arena are
    /// rebuilt from the snapshot.
    pub fn restore_snapshot(&mut self, snap: &crate::snapshot::MemorySnapshot) {
        if self.pages != snap.pages {
            self.pages.clone_from(&snap.pages);
        }
        if self.arena.len() == snap.arena.len() {
            self.arena.copy_from_slice(&snap.arena);
        } else {
            self.arena.clear();
            self.arena.extend_from_slice(&snap.arena);
        }
        self.nonzero = snap.nonzero;
        self.reads = snap.reads;
        self.writes = snap.writes;
    }

    /// Total word reads serviced.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total word writes serviced.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of distinct non-zero words resident (footprint proxy).
    #[must_use]
    pub fn footprint_words(&self) -> usize {
        self.nonzero
    }

    /// Iterates over `(address, value)` for every non-zero resident word.
    fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(move |(&page_no, &slot)| {
            self.arena[slot * PAGE_WORDS..(slot + 1) * PAGE_WORDS]
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0)
                .map(move |(w, &v)| (page_no * PAGE_BYTES + (w * WORD_BYTES) as u64, v))
        })
    }
}

/// Logical equality: same contents and traffic counters, independent of
/// page-allocation order.
impl PartialEq for MainMemory {
    fn eq(&self, other: &Self) -> bool {
        self.reads == other.reads
            && self.writes == other.writes
            && self.nonzero == other.nonzero
            && self.iter_nonzero().all(|(a, v)| other.peek_word(a) == v)
    }
}

impl Eq for MainMemory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mut m = MainMemory::new();
        assert_eq!(m.read_word(0xFFFF_0000), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        m.write_word(0x100, 0xABCD);
        assert_eq!(m.read_word(0x100), 0xABCD);
        // Same word, different byte offset inside it:
        assert_eq!(m.read_word(0x101), 0xABCD);
        // Neighbouring word unaffected:
        assert_eq!(m.read_word(0x108), 0);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = MainMemory::new();
        m.write_block(0x200, &[1, 2, 3, 4]);
        assert_eq!(m.read_block(0x200, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn write_back_dirty_respects_mask() {
        let mut m = MainMemory::new();
        m.write_block(0x300, &[10, 20, 30, 40]);
        m.write_back_dirty(0x300, &[11, 21, 31, 41], 0b0101);
        assert_eq!(m.read_block(0x300, 4), vec![11, 20, 31, 40]);
    }

    #[test]
    fn zero_writes_reclaim_space() {
        let mut m = MainMemory::new();
        m.write_word(0x10, 5);
        assert_eq!(m.footprint_words(), 1);
        m.write_word(0x10, 0);
        assert_eq!(m.footprint_words(), 0);
        assert_eq!(m.read_word(0x10), 0);
    }

    #[test]
    fn counters_track_traffic() {
        let mut m = MainMemory::new();
        m.write_block(0, &[1, 2]);
        let _ = m.read_block(0, 2);
        assert_eq!(m.writes(), 2);
        assert_eq!(m.reads(), 2);
    }

    #[test]
    fn transfers_crossing_a_page_boundary_work() {
        let mut m = MainMemory::new();
        let base = PAGE_BYTES - 2 * WORD_BYTES as u64; // last 2 words of page 0
        m.write_back_dirty(base, &[1, 2, 3, 4], 0b1111);
        assert_eq!(m.read_block(base, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.peek_word(PAGE_BYTES), 3, "page 1 got the overflow");
        assert_eq!(m.footprint_words(), 4);
        assert_eq!(m.writes(), 4);
    }

    #[test]
    fn reads_of_unallocated_pages_are_zero_filled() {
        let mut m = MainMemory::new();
        assert_eq!(m.read_block(0x10_0000, 4), vec![0, 0, 0, 0]);
        assert_eq!(m.footprint_words(), 0, "reads never allocate");
    }

    #[test]
    fn logical_equality_ignores_page_allocation_order() {
        let mut a = MainMemory::new();
        let mut b = MainMemory::new();
        // Touch pages in opposite orders so arena layouts differ.
        a.write_word(0x0, 1);
        a.write_word(2 * PAGE_BYTES, 2);
        b.write_word(2 * PAGE_BYTES, 2);
        b.write_word(0x0, 1);
        assert_eq!(a, b);
        b.write_word(0x8, 9);
        a.write_word(0x8, 9);
        assert_eq!(a, b);
        a.write_word(0x10, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_store_to_untouched_page_counts_but_allocates_nothing() {
        let mut m = MainMemory::new();
        m.write_word(0x5000, 0);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.footprint_words(), 0);
        assert_eq!(m.peek_word(0x5000), 0);
    }
}
