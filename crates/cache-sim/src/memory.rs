//! Sparse main-memory backing store.
//!
//! Memory is the authoritative copy below the cache hierarchy: faults in
//! *clean* cache data are recovered by re-fetching from here (paper §3.2),
//! so the store holds real words, not placeholders.

use std::collections::HashMap;

use crate::geometry::WORD_BYTES;

/// A sparse word-addressable main memory. Unwritten locations read as
/// zero, like freshly initialised DRAM in a functional simulator.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::memory::MainMemory;
///
/// let mut mem = MainMemory::new();
/// mem.write_word(0x40, 7);
/// assert_eq!(mem.read_word(0x40), 7);
/// assert_eq!(mem.read_word(0x48), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MainMemory {
    words: HashMap<u64, u64>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        MainMemory::default()
    }

    fn word_key(addr: u64) -> u64 {
        addr / WORD_BYTES as u64
    }

    /// Reads the 64-bit word containing `addr`.
    pub fn read_word(&mut self, addr: u64) -> u64 {
        self.reads += 1;
        self.peek_word(addr)
    }

    /// Reads without counting an access (for assertions/oracles).
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> u64 {
        *self.words.get(&Self::word_key(addr)).unwrap_or(&0)
    }

    /// Writes the 64-bit word containing `addr`.
    pub fn write_word(&mut self, addr: u64, value: u64) {
        self.writes += 1;
        if value == 0 {
            self.words.remove(&Self::word_key(addr));
        } else {
            self.words.insert(Self::word_key(addr), value);
        }
    }

    /// Reads a whole block of `words` 64-bit words starting at the
    /// block-aligned `base`.
    pub fn read_block(&mut self, base: u64, words: usize) -> Vec<u64> {
        (0..words)
            .map(|i| self.read_word(base + (i * WORD_BYTES) as u64))
            .collect()
    }

    /// Writes a whole block starting at the block-aligned `base`.
    pub fn write_block(&mut self, base: u64, data: &[u64]) {
        for (i, &w) in data.iter().enumerate() {
            self.write_word(base + (i * WORD_BYTES) as u64, w);
        }
    }

    /// Writes back only the dirty words of a block (`mask` bit `i` set ⇔
    /// word `i` is dirty). Clean words are left untouched, which matters
    /// when the cache copy of a clean word has been corrupted: memory
    /// remains authoritative.
    pub fn write_back_dirty(&mut self, base: u64, data: &[u64], mask: u64) {
        for (i, &w) in data.iter().enumerate() {
            if mask >> i & 1 == 1 {
                self.write_word(base + (i * WORD_BYTES) as u64, w);
            }
        }
    }

    /// Total word reads serviced.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total word writes serviced.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of distinct non-zero words resident (footprint proxy).
    #[must_use]
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mut m = MainMemory::new();
        assert_eq!(m.read_word(0xFFFF_0000), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        m.write_word(0x100, 0xABCD);
        assert_eq!(m.read_word(0x100), 0xABCD);
        // Same word, different byte offset inside it:
        assert_eq!(m.read_word(0x101), 0xABCD);
        // Neighbouring word unaffected:
        assert_eq!(m.read_word(0x108), 0);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = MainMemory::new();
        m.write_block(0x200, &[1, 2, 3, 4]);
        assert_eq!(m.read_block(0x200, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn write_back_dirty_respects_mask() {
        let mut m = MainMemory::new();
        m.write_block(0x300, &[10, 20, 30, 40]);
        m.write_back_dirty(0x300, &[11, 21, 31, 41], 0b0101);
        assert_eq!(m.read_block(0x300, 4), vec![11, 20, 31, 40]);
    }

    #[test]
    fn zero_writes_reclaim_space() {
        let mut m = MainMemory::new();
        m.write_word(0x10, 5);
        assert_eq!(m.footprint_words(), 1);
        m.write_word(0x10, 0);
        assert_eq!(m.footprint_words(), 0);
        assert_eq!(m.read_word(0x10), 0);
    }

    #[test]
    fn counters_track_traffic() {
        let mut m = MainMemory::new();
        m.write_block(0, &[1, 2]);
        let _ = m.read_block(0, 2);
        assert_eq!(m.writes(), 2);
        assert_eq!(m.reads(), 2);
    }
}
