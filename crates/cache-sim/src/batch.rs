//! Pre-decoded structure-of-arrays operation batches.
//!
//! The per-op enum dispatch of [`MemOp`] is fine for correctness work
//! but shows up once traces stream in at simulation speed: every op
//! pays a discriminant match plus the iterator protocol. An [`OpBatch`]
//! holds a chunk of operations as three parallel lanes (address, kind,
//! value) — the same structure-of-arrays layout the cross-trial
//! `TrialBatch` engine uses on the injection side — so batch consumers
//! like [`TwoLevelHierarchy::run_batch`](crate::hierarchy::TwoLevelHierarchy::run_batch)
//! can hoist their per-op setup and walk flat arrays.
//!
//! A batch is plain reusable storage: producers (`SharedTrace`, the
//! binary streaming reader) [`clear`](OpBatch::clear) and refill the
//! same allocation, so steady-state decoding performs no heap traffic.

use crate::hierarchy::MemOp;

/// Lane tag for a 64-bit load.
pub const KIND_LOAD: u8 = 0;
/// Lane tag for a 64-bit store.
pub const KIND_STORE: u8 = 1;
/// Lane tag for a single-byte (partial) store.
pub const KIND_STORE_BYTE: u8 = 2;

/// A chunk of memory operations in structure-of-arrays form.
///
/// Invariant: all three lanes are the same length and every kind lane
/// entry is one of [`KIND_LOAD`], [`KIND_STORE`], [`KIND_STORE_BYTE`]
/// (enforced on push).
///
/// # Example
///
/// ```
/// use cppc_cache_sim::batch::OpBatch;
/// use cppc_cache_sim::hierarchy::MemOp;
///
/// let ops = [MemOp::Load(0x40), MemOp::Store(0x48, 7)];
/// let batch = OpBatch::from_ops(&ops);
/// assert_eq!(batch.len(), 2);
/// assert!(batch.iter().eq(ops));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpBatch {
    addrs: Vec<u64>,
    kinds: Vec<u8>,
    values: Vec<u64>,
}

impl OpBatch {
    /// An empty batch with no storage.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `cap` operations in every lane.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        OpBatch {
            addrs: Vec::with_capacity(cap),
            kinds: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Decodes a whole operation slice into a fresh batch.
    #[must_use]
    pub fn from_ops(ops: &[MemOp]) -> Self {
        let mut batch = Self::with_capacity(ops.len());
        batch.extend_from_ops(ops);
        batch
    }

    /// Number of operations held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` when no operations are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Lane capacity (operations that fit without reallocating).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.addrs
            .capacity()
            .min(self.kinds.capacity())
            .min(self.values.capacity())
    }

    /// Empties the batch, keeping lane storage for reuse.
    pub fn clear(&mut self) {
        self.addrs.clear();
        self.kinds.clear();
        self.values.clear();
    }

    /// Ensures room for `additional` more operations in every lane.
    pub fn reserve(&mut self, additional: usize) {
        self.addrs.reserve(additional);
        self.kinds.reserve(additional);
        self.values.reserve(additional);
    }

    /// Appends one decoded operation.
    pub fn push(&mut self, op: MemOp) {
        let (addr, kind, value) = match op {
            MemOp::Load(a) => (a, KIND_LOAD, 0),
            MemOp::Store(a, v) => (a, KIND_STORE, v),
            MemOp::StoreByte(a, v) => (a, KIND_STORE_BYTE, u64::from(v)),
        };
        self.addrs.push(addr);
        self.kinds.push(kind);
        self.values.push(value);
    }

    /// Appends one operation already split into lanes (decoder path).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not one of the `KIND_*` tags, or if `kind`
    /// is [`KIND_STORE_BYTE`] and `value` does not fit in one byte.
    pub fn push_raw(&mut self, addr: u64, kind: u8, value: u64) {
        assert!(kind <= KIND_STORE_BYTE, "invalid op kind {kind}");
        assert!(
            kind != KIND_STORE_BYTE || value <= 0xFF,
            "byte-store value {value:#x} exceeds one byte"
        );
        self.addrs.push(addr);
        self.kinds.push(kind);
        self.values.push(value);
    }

    /// Appends every operation of `ops`.
    pub fn extend_from_ops(&mut self, ops: &[MemOp]) {
        self.reserve(ops.len());
        for &op in ops {
            self.push(op);
        }
    }

    /// The address lane.
    #[must_use]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The kind lane (`KIND_*` tags).
    #[must_use]
    pub fn kinds(&self) -> &[u8] {
        &self.kinds
    }

    /// The value lane (store word; byte-store value in the low byte;
    /// zero for loads).
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Reassembles operation `i` as a [`MemOp`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> MemOp {
        match self.kinds[i] {
            KIND_LOAD => MemOp::Load(self.addrs[i]),
            KIND_STORE => MemOp::Store(self.addrs[i], self.values[i]),
            KIND_STORE_BYTE => MemOp::StoreByte(self.addrs[i], self.values[i] as u8),
            k => unreachable!("invalid op kind {k}"),
        }
    }

    /// Iterates the batch as reassembled [`MemOp`]s.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = MemOp> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl FromIterator<MemOp> for OpBatch {
    fn from_iter<I: IntoIterator<Item = MemOp>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut batch = Self::with_capacity(iter.size_hint().0);
        for op in iter {
            batch.push(op);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemOp> {
        vec![
            MemOp::Load(0x1000),
            MemOp::Store(0x1008, 0xDEAD_BEEF),
            MemOp::StoreByte(0x1011, 0x7F),
            MemOp::Load(0),
        ]
    }

    #[test]
    fn roundtrips_through_lanes() {
        let ops = sample();
        let batch = OpBatch::from_ops(&ops);
        assert_eq!(batch.len(), ops.len());
        assert_eq!(batch.iter().collect::<Vec<_>>(), ops);
        for (i, &op) in ops.iter().enumerate() {
            assert_eq!(batch.get(i), op);
        }
    }

    #[test]
    fn lanes_are_parallel() {
        let batch = OpBatch::from_ops(&sample());
        assert_eq!(batch.addrs().len(), batch.kinds().len());
        assert_eq!(batch.kinds().len(), batch.values().len());
        assert_eq!(
            batch.kinds(),
            &[KIND_LOAD, KIND_STORE, KIND_STORE_BYTE, KIND_LOAD]
        );
        assert_eq!(batch.values(), &[0, 0xDEAD_BEEF, 0x7F, 0]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut batch = OpBatch::from_ops(&sample());
        let cap = batch.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.capacity(), cap);
        batch.push(MemOp::Load(1));
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn push_raw_matches_push() {
        let mut a = OpBatch::new();
        let mut b = OpBatch::new();
        for op in sample() {
            a.push(op);
        }
        b.push_raw(0x1000, KIND_LOAD, 0);
        b.push_raw(0x1008, KIND_STORE, 0xDEAD_BEEF);
        b.push_raw(0x1011, KIND_STORE_BYTE, 0x7F);
        b.push_raw(0, KIND_LOAD, 0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid op kind")]
    fn push_raw_rejects_bad_kind() {
        OpBatch::new().push_raw(0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds one byte")]
    fn push_raw_rejects_wide_byte_store() {
        OpBatch::new().push_raw(0, KIND_STORE_BYTE, 0x100);
    }

    #[test]
    fn from_iterator() {
        let ops = sample();
        let batch: OpBatch = ops.iter().copied().collect();
        assert!(batch.iter().eq(ops));
    }
}
