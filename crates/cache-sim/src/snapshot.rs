//! Warm-state snapshots of the simulator substrate.
//!
//! A fault-injection trial spends most of its time rebuilding the same
//! warm cache state from cold before injecting a single fault. These
//! snapshot types capture that state once — the flat SoA arenas make
//! the capture a handful of `memcpy`s — so every subsequent trial
//! restores into its *existing* arenas instead of replaying the warmup:
//!
//! * [`CacheSnapshot`] — tags/valid/dirty/words arenas, per-set
//!   replacement state, statistics and the incremental counters of a
//!   [`crate::Cache`].
//! * [`MemorySnapshot`] — page table, word arena and traffic counters
//!   of a [`crate::MainMemory`].
//!
//! Restore is allocation-free in steady state: a snapshot is only valid
//! for a simulator of the identical geometry (enforced by length
//! asserts), so every `copy_from_slice` lands in place. Capture and
//! restore methods live on the simulator types themselves
//! ([`crate::Cache::snapshot`], [`crate::MainMemory::restore_snapshot`],
//! …); the structs here just own the saved state.

use std::collections::HashMap;

use crate::replacement::SetReplacementState;
use crate::stats::CacheStats;

/// Saved warm state of a [`crate::Cache`].
///
/// Produced by [`crate::Cache::snapshot`] /
/// [`crate::Cache::capture_snapshot`]; consumed by
/// [`crate::Cache::restore_snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheSnapshot {
    pub(crate) tags: Vec<u64>,
    pub(crate) valid: Vec<bool>,
    pub(crate) dirty: Vec<u64>,
    pub(crate) words: Vec<u64>,
    pub(crate) repl: Vec<SetReplacementState>,
    pub(crate) stats: CacheStats,
    pub(crate) dirty_words: u64,
    pub(crate) scrub_cursor: usize,
    pub(crate) scratch_fetches: u64,
}

impl CacheSnapshot {
    /// Approximate heap bytes held by this snapshot (arena payloads;
    /// feeds the `snapshot.bytes` campaign gauge).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        let ways_per_set = self
            .repl
            .first()
            .map_or(0, |_| self.tags.len() / self.repl.len().max(1));
        (self.tags.len() * 8
            + self.valid.len()
            + self.dirty.len() * 8
            + self.words.len() * 8
            + self.repl.len() * ways_per_set * 8) as u64
    }
}

/// Saved warm state of a [`crate::MainMemory`].
///
/// Produced by [`crate::MainMemory::snapshot`]; consumed by
/// [`crate::MainMemory::restore_snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySnapshot {
    pub(crate) pages: HashMap<u64, usize>,
    pub(crate) arena: Vec<u64>,
    pub(crate) nonzero: usize,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
}

impl MemorySnapshot {
    /// Approximate heap bytes held by this snapshot.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.arena.len() * 8 + self.pages.len() * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use crate::geometry::CacheGeometry;
    use crate::memory::MainMemory;
    use crate::replacement::ReplacementPolicy;
    use crate::Cache;

    fn warm_pair() -> (Cache, MainMemory) {
        let geo = CacheGeometry::new(2048, 2, 32).unwrap();
        let mut mem = MainMemory::new();
        let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
        for i in 0..512u64 {
            cache.store_word(i * 8, i.wrapping_mul(0x9E37), &mut mem);
            if i % 3 == 0 {
                cache.load_word(i * 8, &mut mem);
            }
        }
        (cache, mem)
    }

    #[test]
    fn cache_restore_reproduces_captured_state() {
        let (mut cache, mut mem) = warm_pair();
        let cache_snap = cache.snapshot();
        let mem_snap = mem.snapshot();
        let stats_at_capture = *cache.stats();
        let dirty_at_capture = cache.dirty_word_count();
        let reads_at_capture = mem.reads();

        // Diverge well past the captured state.
        for i in 0..256u64 {
            cache.store_word(0x4000 + i * 8, i, &mut mem);
        }
        cache.flush(&mut mem);
        assert_ne!(*cache.stats(), stats_at_capture);

        cache.restore_snapshot(&cache_snap);
        mem.restore_snapshot(&mem_snap);
        assert_eq!(*cache.stats(), stats_at_capture);
        assert_eq!(cache.dirty_word_count(), dirty_at_capture);
        assert_eq!(mem.reads(), reads_at_capture);
        // The restored image matches a second capture bit for bit.
        assert_eq!(cache.snapshot(), cache_snap);
        assert_eq!(mem.snapshot(), mem_snap);
        assert!(cache_snap.bytes() > 0);
        assert!(mem_snap.bytes() > 0);
    }

    #[test]
    fn dirty_word_iteration_matches_blockwise_scan() {
        let (cache, _mem) = warm_pair();
        let walked: Vec<_> = cache.iter_dirty_words().collect();
        let scanned: Vec<_> = cache
            .iter_blocks()
            .flat_map(|(s, w, b)| {
                (0..b.words().len())
                    .filter(move |&i| b.is_word_dirty(i))
                    .map(move |i| (s, w, i, b.word(i)))
            })
            .collect();
        assert!(!walked.is_empty());
        assert_eq!(walked, scanned);
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn cache_restore_rejects_other_geometry() {
        let (cache, _mem) = warm_pair();
        let snap = cache.snapshot();
        let other_geo = CacheGeometry::new(4096, 4, 32).unwrap();
        Cache::new(other_geo, ReplacementPolicy::Lru).restore_snapshot(&snap);
    }
}
