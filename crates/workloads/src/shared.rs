//! Shared immutable traces.
//!
//! Campaigns and figure binaries replay the *same* deterministic access
//! stream many times — once per scheme, per thread or per trial batch.
//! Regenerating it each time costs a full [`TraceGenerator`] walk (RNG
//! draws, reuse-pool upkeep) per consumer. A [`SharedTrace`] generates
//! the stream **once** into an immutable `Arc<[MemOp]>` that any number
//! of consumers (including worker threads — the buffer is `Send + Sync`)
//! replay by iterating a borrowed slice: no regeneration, no copies,
//! no per-replay allocation beyond the iterator itself.
//!
//! Replays are observable through the `campaign.trace_replays` counter,
//! so a campaign's trace-amortisation factor shows up in `cppc-cli
//! stats` next to the shard throughput it buys.

use std::sync::Arc;

use cppc_cache_sim::hierarchy::MemOp;

use crate::generator::TraceGenerator;
use crate::profile::BenchmarkProfile;

/// A benchmark trace generated once and replayed arbitrarily often.
///
/// Cloning is cheap (one `Arc` bump) and the clone replays the identical
/// operation sequence, so one `SharedTrace` can fan out to every worker
/// thread of a campaign.
///
/// # Example
///
/// ```
/// use cppc_workloads::{spec2000_profiles, SharedTrace, TraceGenerator};
///
/// let profile = &spec2000_profiles()[0];
/// let trace = SharedTrace::generate(profile, 42, 1000);
/// // Replays are bit-identical to a fresh generator with the same seed.
/// let fresh: Vec<_> = TraceGenerator::new(profile, 42).take(1000).collect();
/// assert!(trace.replay().eq(fresh));
/// assert!(trace.replay().eq(trace.replay()));
/// ```
#[derive(Debug, Clone)]
pub struct SharedTrace {
    ops: Arc<[MemOp]>,
}

impl SharedTrace {
    /// Generates `len` operations of `profile` under `seed`, exactly as
    /// `TraceGenerator::new(profile, seed).take(len)` would produce them.
    #[must_use]
    pub fn generate(profile: &BenchmarkProfile, seed: u64, len: usize) -> Self {
        Self::from_ops(TraceGenerator::new(profile, seed).take(len).collect())
    }

    /// Wraps an existing operation sequence (e.g. one read from disk via
    /// [`read_trace`](crate::read_trace)).
    #[must_use]
    pub fn from_ops(ops: Vec<MemOp>) -> Self {
        SharedTrace { ops: ops.into() }
    }

    /// Materialises a binary trace file (`docs/TRACES.md`) into a
    /// shared trace. Use [`BinTraceReader`](crate::BinTraceReader)
    /// directly when the trace may not fit in memory.
    ///
    /// # Errors
    ///
    /// Returns [`BinTraceError`](crate::BinTraceError) on I/O failures
    /// or malformed content.
    pub fn from_binary_file<P: AsRef<std::path::Path>>(
        path: P,
    ) -> Result<Self, crate::BinTraceError> {
        // No BufReader layer: the binary reader chunks for itself.
        let file = std::fs::File::open(path)?;
        Ok(Self::from_ops(crate::read_bin_trace(file)?))
    }

    /// Decodes the whole trace into a fresh structure-of-arrays
    /// [`OpBatch`](crate::OpBatch) — the same pre-decoded form the
    /// streaming binary reader produces, for
    /// [`run_batch`](cppc_cache_sim::TwoLevelHierarchy::run_batch)
    /// consumers.
    #[must_use]
    pub fn batch(&self) -> crate::OpBatch {
        crate::OpBatch::from_ops(&self.ops)
    }

    /// Number of operations in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the trace holds no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The underlying operations.
    #[must_use]
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Starts one replay of the whole trace. Each call bumps the
    /// `campaign.trace_replays` counter.
    #[must_use]
    pub fn replay(&self) -> Replay {
        cppc_campaign::obs::register_metrics();
        cppc_campaign::obs::TRACE_REPLAYS.inc();
        Replay {
            ops: Arc::clone(&self.ops),
            pos: 0,
        }
    }
}

/// An iterator over one replay of a [`SharedTrace`]. Owns an `Arc`
/// handle, so it outlives the trace it came from and crosses thread
/// boundaries freely.
#[derive(Debug, Clone)]
pub struct Replay {
    ops: Arc<[MemOp]>,
    pos: usize,
}

impl Iterator for Replay {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        let op = *self.ops.get(self.pos)?;
        self.pos += 1;
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.ops.len() - self.pos;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Replay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::spec2000_profiles;

    #[test]
    fn replay_matches_fresh_generator() {
        let p = &spec2000_profiles()[3];
        let shared = SharedTrace::generate(p, 0xBEEF, 2_000);
        let fresh: Vec<_> = TraceGenerator::new(p, 0xBEEF).take(2_000).collect();
        assert_eq!(shared.len(), 2_000);
        assert!(shared.replay().eq(fresh));
    }

    #[test]
    fn replays_are_independent_iterators() {
        let p = &spec2000_profiles()[0];
        let shared = SharedTrace::generate(p, 7, 100);
        let mut a = shared.replay();
        let b = shared.replay();
        a.by_ref().take(50).count();
        // `a` advanced; `b` still starts from the beginning.
        assert_eq!(b.len(), 100);
        assert!(shared.replay().eq(b));
    }

    #[test]
    fn replay_crosses_threads() {
        let p = &spec2000_profiles()[1];
        let shared = SharedTrace::generate(p, 3, 500);
        let expected: Vec<_> = shared.replay().collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = shared.clone();
                std::thread::spawn(move || t.replay().collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn empty_trace() {
        let t = SharedTrace::from_ops(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.replay().count(), 0);
    }

    #[test]
    fn replay_counter_increments() {
        let t = SharedTrace::from_ops(vec![MemOp::Load(0)]);
        let before = cppc_campaign::obs::TRACE_REPLAYS.get();
        let _ = t.replay();
        let _ = t.replay();
        if cfg!(feature = "obs") {
            assert_eq!(cppc_campaign::obs::TRACE_REPLAYS.get(), before + 2);
        }
    }
}
