//! Versioned fixed-width binary trace format with a streaming reader.
//!
//! The text format (`trace_io`) is greppable but costs an ASCII parse
//! per operation — far too slow to feed SPEC-like address streams at
//! simulation speed. This module defines `cppc-trace-bin v1` (full spec
//! in `docs/TRACES.md`):
//!
//! * a 4096-byte page-aligned header — magic `CPPCT\x01`, record count,
//!   data offset — so the record array starts on a page boundary and
//!   the file can later be mapped directly;
//! * 16-byte little-endian records: word 0 packs the byte address in
//!   bits 0..62 with the op kind in bits 62..64, word 1 carries the
//!   store value;
//! * a buffered [`BinTraceWriter`] that back-patches the record count
//!   on [`finish`](BinTraceWriter::finish), so streams of unknown
//!   length produce byte-identical files to [`write_bin_trace`];
//! * a streaming [`BinTraceReader`] that decodes straight out of one
//!   reusable chunk buffer into caller-owned [`OpBatch`] lanes — O(1)
//!   memory for traces larger than RAM and zero heap allocation in
//!   steady state (pinned by `tests/alloc_free.rs`).

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use cppc_cache_sim::batch::{self, OpBatch};
use cppc_cache_sim::hierarchy::MemOp;
use cppc_cache_sim::TwoLevelHierarchy;

/// Magic bytes opening every binary trace: `CPPCT` + format version 1.
pub const MAGIC: [u8; 6] = *b"CPPCT\x01";

/// Header size in bytes. One page, so the record array that follows is
/// page-aligned (mmap-ready even though this crate only streams).
pub const HEADER_BYTES: u64 = 4096;

/// Size of one encoded record in bytes.
pub const RECORD_BYTES: usize = 16;

/// Record-count field value meaning "unknown, derive from the stream"
/// (a [`BinTraceWriter`] that was never [`finish`](BinTraceWriter::finish)ed).
pub const COUNT_UNKNOWN: u64 = u64::MAX;

/// Chunk size of the streaming reader's reusable buffer: a multiple of
/// both the record and page size, so refills stay record- and
/// page-aligned.
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Default operations per [`OpBatch`] handed out by [`drive`].
pub const DEFAULT_BATCH_OPS: usize = 4096;

const ADDR_BITS: u32 = 62;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// Error while reading a binary trace.
#[derive(Debug)]
pub enum BinTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with a valid v1 header.
    BadHeader(String),
    /// A malformed record, with its 0-based record index.
    BadRecord {
        /// 0-based index of the offending record.
        index: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The header's record count disagrees with the stream contents.
    CountMismatch {
        /// Count declared in the header.
        declared: u64,
        /// Records actually present.
        actual: u64,
    },
}

impl fmt::Display for BinTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinTraceError::Io(e) => write!(f, "binary trace I/O error: {e}"),
            BinTraceError::BadHeader(why) => write!(f, "bad binary trace header: {why}"),
            BinTraceError::BadRecord { index, reason } => {
                write!(f, "bad binary trace record {index}: {reason}")
            }
            BinTraceError::CountMismatch { declared, actual } => write!(
                f,
                "binary trace record count mismatch: header declares {declared}, stream holds {actual}"
            ),
        }
    }
}

impl std::error::Error for BinTraceError {}

impl From<io::Error> for BinTraceError {
    fn from(e: io::Error) -> Self {
        BinTraceError::Io(e)
    }
}

fn header_bytes(count: u64) -> [u8; HEADER_BYTES as usize] {
    let mut header = [0u8; HEADER_BYTES as usize];
    header[..6].copy_from_slice(&MAGIC);
    header[8..16].copy_from_slice(&count.to_le_bytes());
    header[16..24].copy_from_slice(&HEADER_BYTES.to_le_bytes());
    header
}

fn encode(op: MemOp) -> io::Result<[u8; RECORD_BYTES]> {
    let (addr, kind, value) = match op {
        MemOp::Load(a) => (a, batch::KIND_LOAD, 0),
        MemOp::Store(a, v) => (a, batch::KIND_STORE, v),
        MemOp::StoreByte(a, v) => (a, batch::KIND_STORE_BYTE, u64::from(v)),
    };
    if addr > ADDR_MASK {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("address {addr:#x} exceeds the format's 62-bit address space"),
        ));
    }
    let word0 = addr | (u64::from(kind) << ADDR_BITS);
    let mut rec = [0u8; RECORD_BYTES];
    rec[..8].copy_from_slice(&word0.to_le_bytes());
    rec[8..].copy_from_slice(&value.to_le_bytes());
    Ok(rec)
}

/// Writes a complete trace (known length) to `out`: header with the
/// exact record count, then one record per op. Produces the same bytes
/// a [`BinTraceWriter`] fed the same ops would after `finish`.
///
/// # Errors
///
/// Propagates I/O errors; rejects addresses above 2^62.
pub fn write_bin_trace<W: Write>(out: &mut W, ops: &[MemOp]) -> io::Result<usize> {
    out.write_all(&header_bytes(ops.len() as u64))?;
    for &op in ops {
        out.write_all(&encode(op)?)?;
    }
    Ok(ops.len())
}

/// Incremental binary trace writer for streams of unknown length.
///
/// Writes the header with [`COUNT_UNKNOWN`] up front and back-patches
/// the true count on [`finish`](BinTraceWriter::finish) (hence the
/// `Seek` bound). Dropping the writer without `finish` leaves a
/// readable file whose count the reader derives from the stream.
#[derive(Debug)]
pub struct BinTraceWriter<W: Write + Seek> {
    out: W,
    count: u64,
}

impl<W: Write + Seek> BinTraceWriter<W> {
    /// Starts a trace on `out`, writing the provisional header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&header_bytes(COUNT_UNKNOWN))?;
        Ok(BinTraceWriter { out, count: 0 })
    }

    /// Appends one operation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects addresses above 2^62.
    pub fn push(&mut self, op: MemOp) -> io::Result<()> {
        self.out.write_all(&encode(op)?)?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Back-patches the record count into the header, flushes, and
    /// returns the final count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.seek(SeekFrom::Start(8))?;
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.seek(SeekFrom::End(0))?;
        self.out.flush()?;
        Ok(self.count)
    }
}

/// Streaming reader decoding records chunk-at-a-time into [`OpBatch`]
/// lanes.
///
/// Holds exactly one [`CHUNK_BYTES`] buffer for the whole stream and
/// never allocates after construction (callers reuse their batch), so
/// memory stays O(1) however large the trace is.
#[derive(Debug)]
pub struct BinTraceReader<R: Read> {
    inner: R,
    declared: u64,
    decoded: u64,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    eof: bool,
    finished: bool,
}

impl BinTraceReader<BufReader<File>> {
    /// Opens a binary trace file for streaming.
    ///
    /// # Errors
    ///
    /// Returns [`BinTraceError`] on I/O failures or a bad header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, BinTraceError> {
        // The reader does its own chunking; a minimal BufReader layer
        // would only add a redundant copy, so keep its buffer tiny.
        Self::new(BufReader::with_capacity(RECORD_BYTES, File::open(path)?))
    }
}

impl<R: Read> BinTraceReader<R> {
    /// Reads and validates the header, leaving the stream positioned at
    /// the first record.
    ///
    /// # Errors
    ///
    /// Returns [`BinTraceError`] on I/O failures or a bad header.
    pub fn new(mut inner: R) -> Result<Self, BinTraceError> {
        let mut header = [0u8; HEADER_BYTES as usize];
        inner.read_exact(&mut header).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                BinTraceError::BadHeader("stream shorter than the 4096-byte header".into())
            }
            _ => BinTraceError::Io(e),
        })?;
        crate::obs::register_metrics();
        crate::obs::TRACE_BYTES_READ.add(HEADER_BYTES);
        if header[..6] != MAGIC {
            return Err(BinTraceError::BadHeader(format!(
                "magic {:02x?} is not CPPCT v1",
                &header[..6]
            )));
        }
        let declared = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let data_offset = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if data_offset != HEADER_BYTES {
            return Err(BinTraceError::BadHeader(format!(
                "data offset {data_offset} (v1 requires {HEADER_BYTES})"
            )));
        }
        Ok(BinTraceReader {
            inner,
            declared,
            decoded: 0,
            buf: vec![0u8; CHUNK_BYTES],
            start: 0,
            end: 0,
            eof: false,
            finished: false,
        })
    }

    /// Record count declared by the header, if the writer knew it.
    #[must_use]
    pub fn declared_ops(&self) -> Option<u64> {
        (self.declared != COUNT_UNKNOWN).then_some(self.declared)
    }

    /// Operations decoded so far.
    #[must_use]
    pub fn ops_decoded(&self) -> u64 {
        self.decoded
    }

    /// Slides leftover bytes to the buffer front and reads more.
    /// Returns `false` once the stream is exhausted and fewer than
    /// [`RECORD_BYTES`] remain buffered.
    fn refill(&mut self) -> io::Result<bool> {
        self.buf.copy_within(self.start..self.end, 0);
        self.end -= self.start;
        self.start = 0;
        crate::obs::TRACE_CHUNK_REFILLS.inc();
        while !self.eof && self.end < self.buf.len() {
            let n = self.inner.read(&mut self.buf[self.end..])?;
            if n == 0 {
                self.eof = true;
            } else {
                self.end += n;
                crate::obs::TRACE_BYTES_READ.add(n as u64);
            }
        }
        Ok(self.end - self.start >= RECORD_BYTES)
    }

    /// Decodes up to `max_ops` records into `batch` (cleared first).
    /// Returns the number decoded; `0` means the stream ended cleanly.
    ///
    /// # Errors
    ///
    /// Returns [`BinTraceError`] on I/O failures, malformed records, a
    /// trailing partial record, or a header/stream count disagreement.
    pub fn next_batch(
        &mut self,
        batch: &mut OpBatch,
        max_ops: usize,
    ) -> Result<usize, BinTraceError> {
        batch.clear();
        batch.reserve(max_ops);
        while batch.len() < max_ops {
            let avail = self.end - self.start;
            if avail < RECORD_BYTES {
                if self.eof || !self.refill()? {
                    break;
                }
                continue;
            }
            let take = (avail / RECORD_BYTES).min(max_ops - batch.len());
            for rec in
                self.buf[self.start..self.start + take * RECORD_BYTES].chunks_exact(RECORD_BYTES)
            {
                let word0 = u64::from_le_bytes(rec[..8].try_into().unwrap());
                let value = u64::from_le_bytes(rec[8..].try_into().unwrap());
                let kind = (word0 >> ADDR_BITS) as u8;
                let index = self.decoded + batch.len() as u64;
                if kind > batch::KIND_STORE_BYTE {
                    return Err(BinTraceError::BadRecord {
                        index,
                        reason: "invalid op kind (tag 3 is reserved)",
                    });
                }
                if kind == batch::KIND_STORE_BYTE && value > 0xFF {
                    return Err(BinTraceError::BadRecord {
                        index,
                        reason: "byte-store value exceeds one byte",
                    });
                }
                batch.push_raw(word0 & ADDR_MASK, kind, value);
            }
            self.start += take * RECORD_BYTES;
        }
        self.decoded += batch.len() as u64;
        crate::obs::TRACE_OPS_DECODED.add(batch.len() as u64);
        if batch.is_empty() && !self.finished {
            self.finished = true;
            if self.end - self.start != 0 {
                return Err(BinTraceError::BadRecord {
                    index: self.decoded,
                    reason: "trailing partial record",
                });
            }
            if self.declared != COUNT_UNKNOWN && self.decoded != self.declared {
                return Err(BinTraceError::CountMismatch {
                    declared: self.declared,
                    actual: self.decoded,
                });
            }
        }
        Ok(batch.len())
    }
}

/// Materialises a whole binary trace (use [`BinTraceReader`] directly
/// when the trace may not fit in memory).
///
/// # Errors
///
/// Returns [`BinTraceError`] on I/O failures or malformed content.
pub fn read_bin_trace<R: Read>(input: R) -> Result<Vec<MemOp>, BinTraceError> {
    let mut reader = BinTraceReader::new(input)?;
    let mut ops = Vec::with_capacity(reader.declared_ops().unwrap_or(0) as usize);
    let mut batch = OpBatch::with_capacity(DEFAULT_BATCH_OPS);
    while reader.next_batch(&mut batch, DEFAULT_BATCH_OPS)? > 0 {
        ops.extend(batch.iter());
    }
    Ok(ops)
}

/// Convenience: writes `ops` as a binary trace file at `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bin_trace_file<P: AsRef<Path>>(path: P, ops: &[MemOp]) -> io::Result<usize> {
    let mut out = BufWriter::new(File::create(path)?);
    let n = write_bin_trace(&mut out, ops)?;
    out.flush()?;
    Ok(n)
}

/// Streams the remainder of `reader` through `hierarchy` one batch at a
/// time via [`TwoLevelHierarchy::run_batch`], reusing the caller's
/// `batch` storage ([`DEFAULT_BATCH_OPS`] ops per refill). Returns the
/// number of operations driven.
///
/// # Errors
///
/// Returns [`BinTraceError`] on I/O failures or malformed content.
pub fn drive<R: Read>(
    reader: &mut BinTraceReader<R>,
    hierarchy: &mut TwoLevelHierarchy,
    batch: &mut OpBatch,
) -> Result<u64, BinTraceError> {
    let mut driven = 0;
    while reader.next_batch(batch, DEFAULT_BATCH_OPS)? > 0 {
        hierarchy.run_batch(batch);
        driven += batch.len() as u64;
    }
    Ok(driven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::spec2000_profiles;
    use std::io::Cursor;

    fn sample() -> Vec<MemOp> {
        vec![
            MemOp::Load(0x1000),
            MemOp::Store(0x1008, 0xDEAD_BEEF_F00D_CAFE),
            MemOp::StoreByte(0x1011, 0x7F),
            MemOp::Load(ADDR_MASK),
        ]
    }

    #[test]
    fn roundtrip() {
        let ops = sample();
        let mut buf = Vec::new();
        assert_eq!(write_bin_trace(&mut buf, &ops).unwrap(), ops.len());
        assert_eq!(buf.len(), HEADER_BYTES as usize + ops.len() * RECORD_BYTES);
        assert_eq!(read_bin_trace(Cursor::new(&buf)).unwrap(), ops);
    }

    #[test]
    fn generated_trace_roundtrips() {
        let p = &spec2000_profiles()[0];
        let ops: Vec<MemOp> = TraceGenerator::new(p, 77).take(20_000).collect();
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &ops).unwrap();
        assert_eq!(read_bin_trace(Cursor::new(&buf)).unwrap(), ops);
    }

    #[test]
    fn incremental_writer_matches_batch_writer_bytes() {
        let ops = sample();
        let mut whole = Vec::new();
        write_bin_trace(&mut whole, &ops).unwrap();
        let mut cursor = Cursor::new(Vec::new());
        let mut w = BinTraceWriter::new(&mut cursor).unwrap();
        for &op in &ops {
            w.push(op).unwrap();
        }
        assert_eq!(w.finish().unwrap(), ops.len() as u64);
        assert_eq!(cursor.into_inner(), whole, "byte-identical files");
    }

    #[test]
    fn unfinished_writer_is_still_readable() {
        let mut cursor = Cursor::new(Vec::new());
        {
            let mut w = BinTraceWriter::new(&mut cursor).unwrap();
            w.push(MemOp::Load(0x40)).unwrap();
            // no finish: count stays COUNT_UNKNOWN
        }
        let bytes = cursor.into_inner();
        let reader = BinTraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.declared_ops(), None);
        assert_eq!(
            read_bin_trace(Cursor::new(&bytes)).unwrap(),
            vec![MemOp::Load(0x40)]
        );
    }

    #[test]
    fn streaming_reader_crosses_chunk_boundaries() {
        // More records than one chunk holds, with a batch size that
        // does not divide the chunk, so refills land mid-batch.
        let p = &spec2000_profiles()[1];
        let ops: Vec<MemOp> = TraceGenerator::new(p, 9)
            .take(3 * CHUNK_BYTES / RECORD_BYTES)
            .collect();
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &ops).unwrap();
        let mut reader = BinTraceReader::new(Cursor::new(&buf)).unwrap();
        assert_eq!(reader.declared_ops(), Some(ops.len() as u64));
        let mut batch = OpBatch::new();
        let mut back = Vec::new();
        while reader.next_batch(&mut batch, 1000).unwrap() > 0 {
            back.extend(batch.iter());
        }
        assert_eq!(back, ops);
        assert_eq!(reader.ops_decoded(), ops.len() as u64);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_bin_trace(Cursor::new(&buf)).unwrap_err(),
            BinTraceError::BadHeader(_)
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        let err = read_bin_trace(Cursor::new(vec![0u8; 100])).unwrap_err();
        assert!(matches!(err, BinTraceError::BadHeader(_)));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &sample()).unwrap();
        buf[17] = 0x20; // data offset 4096 -> 8192
        assert!(matches!(
            read_bin_trace(Cursor::new(&buf)).unwrap_err(),
            BinTraceError::BadHeader(_)
        ));
    }

    #[test]
    fn rejects_reserved_kind() {
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &[MemOp::Load(0x40)]).unwrap();
        let rec = HEADER_BYTES as usize;
        buf[rec + 7] |= 0xC0; // kind tag 3
        let err = read_bin_trace(Cursor::new(&buf)).unwrap_err();
        assert!(
            matches!(err, BinTraceError::BadRecord { index: 0, reason } if reason.contains("kind"))
        );
    }

    #[test]
    fn rejects_wide_byte_store_value() {
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &[MemOp::StoreByte(0x40, 1)]).unwrap();
        buf[HEADER_BYTES as usize + 9] = 1; // value 0x101
        let err = read_bin_trace(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, BinTraceError::BadRecord { index: 0, .. }));
    }

    #[test]
    fn rejects_trailing_partial_record() {
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &[MemOp::Load(0x40)]).unwrap();
        buf.extend_from_slice(&[1, 2, 3]);
        let err = read_bin_trace(Cursor::new(&buf)).unwrap_err();
        assert!(
            matches!(err, BinTraceError::BadRecord { reason, .. } if reason.contains("partial"))
        );
    }

    #[test]
    fn rejects_count_mismatch() {
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &sample()).unwrap();
        buf[8] = 99;
        let err = read_bin_trace(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(
            err,
            BinTraceError::CountMismatch {
                declared: 99,
                actual: 4
            }
        ));
    }

    #[test]
    fn rejects_oversized_address_on_write() {
        let mut buf = Vec::new();
        let err = write_bin_trace(&mut buf, &[MemOp::Load(1 << ADDR_BITS)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn drive_matches_materialized_run() {
        use cppc_cache_sim::{CacheGeometry, ReplacementPolicy};
        let p = &spec2000_profiles()[2];
        let ops: Vec<MemOp> = TraceGenerator::new(p, 0xD1CE).take(30_000).collect();
        let mut buf = Vec::new();
        write_bin_trace(&mut buf, &ops).unwrap();

        let l1 = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
        let l2 = CacheGeometry::new(32 * 1024, 4, 32).unwrap();
        let mut direct = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        direct.run(ops.iter().copied());

        let mut streamed = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        let mut reader = BinTraceReader::new(Cursor::new(&buf)).unwrap();
        let mut batch = OpBatch::new();
        let driven = drive(&mut reader, &mut streamed, &mut batch).unwrap();
        assert_eq!(driven, ops.len() as u64);
        assert_eq!(direct.stats(), streamed.stats());
        assert_eq!(direct.cycle(), streamed.cycle());
    }

    #[test]
    fn error_display() {
        assert!(BinTraceError::BadRecord {
            index: 7,
            reason: "x"
        }
        .to_string()
        .contains("record 7"));
        assert!(BinTraceError::CountMismatch {
            declared: 1,
            actual: 2
        }
        .to_string()
        .contains("declares 1"));
    }
}
