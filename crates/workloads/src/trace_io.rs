//! Trace serialisation: record a generated trace to a writer and replay
//! it later, so experiments can be archived and re-run bit-exactly (or
//! traces from a real machine can be fed in).
//!
//! The format is one operation per line, trivially greppable:
//!
//! ```text
//! # cppc-trace v1
//! L 1000
//! S 1008 deadbeef
//! B 1011 7f
//! ```
//!
//! `L` = load, `S` = 64-bit store (hex value), `B` = byte store.
//! Addresses and values are hexadecimal without `0x`.

use std::fmt;
use std::io::{self, BufRead, Write};

use cppc_cache_sim::hierarchy::MemOp;

/// The header line identifying the format.
pub const HEADER: &str = "# cppc-trace v1";

/// Error while parsing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong header.
    BadHeader(String),
    /// A malformed line, with its 1-based line number.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadHeader(h) => write!(f, "bad trace header: '{h}'"),
            TraceError::BadLine { line, content } => {
                write!(f, "bad trace line {line}: '{content}'")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes a trace to `out`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace<W: Write, I: IntoIterator<Item = MemOp>>(
    out: &mut W,
    trace: I,
) -> io::Result<usize> {
    writeln!(out, "{HEADER}")?;
    let mut n = 0;
    for op in trace {
        match op {
            MemOp::Load(a) => writeln!(out, "L {a:x}")?,
            MemOp::Store(a, v) => writeln!(out, "S {a:x} {v:x}")?,
            MemOp::StoreByte(a, v) => writeln!(out, "B {a:x} {v:x}")?,
        }
        n += 1;
    }
    Ok(n)
}

/// Reads a trace from `input`.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failures or malformed content.
pub fn read_trace<R: BufRead>(input: R) -> Result<Vec<MemOp>, TraceError> {
    let mut lines = input.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != HEADER {
        return Err(TraceError::BadHeader(header));
    }
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = || TraceError::BadLine {
            line: i + 2,
            content: line.clone(),
        };
        let mut parts = trimmed.split_whitespace();
        let kind = parts.next().ok_or_else(bad)?;
        let addr = u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
        let op = match kind {
            "L" => MemOp::Load(addr),
            "S" => {
                let v =
                    u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
                MemOp::Store(addr, v)
            }
            "B" => {
                let v = u8::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
                MemOp::StoreByte(addr, v)
            }
            _ => return Err(bad()),
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::spec2000_profiles;
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let ops = vec![
            MemOp::Load(0x1000),
            MemOp::Store(0x1008, 0xDEAD_BEEF),
            MemOp::StoreByte(0x1011, 0x7F),
        ];
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, ops.clone()).unwrap(), 3);
        let back = read_trace(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn generated_trace_roundtrips() {
        let p = &spec2000_profiles()[0];
        let ops: Vec<MemOp> = TraceGenerator::new(p, 77).take(5_000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, ops.clone()).unwrap();
        assert_eq!(read_trace(BufReader::new(&buf[..])).unwrap(), ops);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(BufReader::new(&b"not a trace\nL 0"[..])).unwrap_err();
        assert!(matches!(err, TraceError::BadHeader(_)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "# cppc-trace v1\nX 10",
            "# cppc-trace v1\nL",
            "# cppc-trace v1\nS 10",
            "# cppc-trace v1\nL zz",
            "# cppc-trace v1\nL 10 extra",
        ] {
            let err = read_trace(BufReader::new(bad.as_bytes())).unwrap_err();
            assert!(matches!(err, TraceError::BadLine { .. }), "{bad}");
        }
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# cppc-trace v1\n\n# comment\nL a0\n";
        let ops = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(ops, vec![MemOp::Load(0xA0)]);
    }

    #[test]
    fn error_display() {
        let e = TraceError::BadLine {
            line: 3,
            content: "oops".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
