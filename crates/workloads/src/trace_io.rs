//! Trace serialisation: record a generated trace to a writer and replay
//! it later, so experiments can be archived and re-run bit-exactly (or
//! traces from a real machine can be fed in).
//!
//! The format is one operation per line, trivially greppable:
//!
//! ```text
//! # cppc-trace v1
//! L 1000
//! S 1008 deadbeef
//! B 1011 7f
//! ```
//!
//! `L` = load, `S` = 64-bit store (hex value), `B` = byte store.
//! Addresses and values are hexadecimal; the writer emits them bare,
//! the reader also accepts an optional `0x`/`0X` prefix and CRLF line
//! endings (traces recorded on other systems survive the round trip).

use std::fmt;
use std::io::{self, BufRead, Write};

use cppc_cache_sim::hierarchy::MemOp;

/// The header line identifying the format.
pub const HEADER: &str = "# cppc-trace v1";

/// Error while parsing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong header.
    BadHeader(String),
    /// A malformed line, with its 1-based line number.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadHeader(h) => write!(f, "bad trace header: '{h}'"),
            TraceError::BadLine {
                line,
                content,
                reason,
            } => {
                write!(f, "bad trace line {line} ({reason}): '{content}'")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes a trace to `out`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace<W: Write, I: IntoIterator<Item = MemOp>>(
    out: &mut W,
    trace: I,
) -> io::Result<usize> {
    writeln!(out, "{HEADER}")?;
    let mut n = 0;
    for op in trace {
        match op {
            MemOp::Load(a) => writeln!(out, "L {a:x}")?,
            MemOp::Store(a, v) => writeln!(out, "S {a:x} {v:x}")?,
            MemOp::StoreByte(a, v) => writeln!(out, "B {a:x} {v:x}")?,
        }
        n += 1;
    }
    Ok(n)
}

/// Reads a trace from `input`.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failures or malformed content.
pub fn read_trace<R: BufRead>(input: R) -> Result<Vec<MemOp>, TraceError> {
    // `BufRead::lines` already strips `\n` and a trailing `\r`, so CRLF
    // input parses identically to LF input.
    let mut lines = input.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != HEADER {
        return Err(TraceError::BadHeader(header));
    }
    // Numbers are hex with an optional 0x/0X prefix (foreign tools and
    // hand-written traces often include it).
    let hex = |field: Option<&str>, missing: &'static str| -> Result<u64, &'static str> {
        let raw = field.ok_or(missing)?;
        let digits = raw
            .strip_prefix("0x")
            .or_else(|| raw.strip_prefix("0X"))
            .unwrap_or(raw);
        u64::from_str_radix(digits, 16).map_err(|_| "not a hex number")
    };
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = |reason: &'static str| TraceError::BadLine {
            line: i + 2,
            content: line.clone(),
            reason,
        };
        let mut parts = trimmed.split_whitespace();
        let kind = parts.next().ok_or_else(|| bad("missing op kind"))?;
        let addr = hex(parts.next(), "missing address").map_err(bad)?;
        let op = match kind {
            "L" => MemOp::Load(addr),
            "S" => MemOp::Store(addr, hex(parts.next(), "missing store value").map_err(bad)?),
            "B" => {
                let v = hex(parts.next(), "missing store value").map_err(bad)?;
                MemOp::StoreByte(
                    addr,
                    u8::try_from(v).map_err(|_| bad("byte-store value exceeds one byte"))?,
                )
            }
            _ => return Err(bad("unknown op kind (expected L, S or B)")),
        };
        if parts.next().is_some() {
            return Err(bad("trailing garbage after operands"));
        }
        ops.push(op);
    }
    Ok(ops)
}

/// Reads a Dinero-style `din` trace: one `<accesstype> <hexaddr>`
/// reference per line, where access type `0` is a data read, `1` a
/// data write and `2` an instruction fetch. Reads and fetches map to
/// [`MemOp::Load`]; writes map to [`MemOp::Store`] with value 0 (din
/// traces carry no data values). An optional third hex field (the
/// reference size some tools emit) is accepted and ignored.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failures or malformed content.
pub fn read_din_trace<R: BufRead>(input: R) -> Result<Vec<MemOp>, TraceError> {
    let hex = |field: Option<&str>, missing: &'static str| -> Result<u64, &'static str> {
        let raw = field.ok_or(missing)?;
        let digits = raw
            .strip_prefix("0x")
            .or_else(|| raw.strip_prefix("0X"))
            .unwrap_or(raw);
        u64::from_str_radix(digits, 16).map_err(|_| "not a hex number")
    };
    let mut ops = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = |reason: &'static str| TraceError::BadLine {
            line: i + 1,
            content: line.clone(),
            reason,
        };
        let mut parts = trimmed.split_whitespace();
        let label = parts.next().ok_or_else(|| bad("missing access type"))?;
        let addr = hex(parts.next(), "missing address").map_err(bad)?;
        let op = match label {
            "0" | "2" => MemOp::Load(addr),
            "1" => MemOp::Store(addr, 0),
            _ => return Err(bad("unknown access type (expected 0, 1 or 2)")),
        };
        if let Some(size) = parts.next() {
            // The optional size field; it must at least look numeric.
            hex(Some(size), "not a hex number").map_err(bad)?;
            if parts.next().is_some() {
                return Err(bad("trailing garbage after operands"));
            }
        }
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::spec2000_profiles;
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let ops = vec![
            MemOp::Load(0x1000),
            MemOp::Store(0x1008, 0xDEAD_BEEF),
            MemOp::StoreByte(0x1011, 0x7F),
        ];
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, ops.clone()).unwrap(), 3);
        let back = read_trace(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn generated_trace_roundtrips() {
        let p = &spec2000_profiles()[0];
        let ops: Vec<MemOp> = TraceGenerator::new(p, 77).take(5_000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, ops.clone()).unwrap();
        assert_eq!(read_trace(BufReader::new(&buf[..])).unwrap(), ops);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(BufReader::new(&b"not a trace\nL 0"[..])).unwrap_err();
        assert!(matches!(err, TraceError::BadHeader(_)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, why) in [
            ("# cppc-trace v1\nX 10", "unknown op kind"),
            ("# cppc-trace v1\nL", "missing address"),
            ("# cppc-trace v1\nS 10", "missing store value"),
            ("# cppc-trace v1\nL zz", "not a hex number"),
            ("# cppc-trace v1\nL 0xzz", "not a hex number"),
            ("# cppc-trace v1\nB 10 1ff", "exceeds one byte"),
            ("# cppc-trace v1\nL 10 extra", "trailing garbage"),
            ("# cppc-trace v1\nS 10 20 30", "trailing garbage"),
        ] {
            let err = read_trace(BufReader::new(bad.as_bytes())).unwrap_err();
            match err {
                TraceError::BadLine {
                    line: 2, reason, ..
                } => {
                    assert!(reason.contains(why), "{bad}: got reason '{reason}'");
                }
                other => panic!("{bad}: expected BadLine, got {other}"),
            }
        }
    }

    #[test]
    fn accepts_crlf_line_endings() {
        let text = "# cppc-trace v1\r\nL a0\r\nS b0 1\r\nB c1 7f\r\n";
        let ops = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(
            ops,
            vec![
                MemOp::Load(0xA0),
                MemOp::Store(0xB0, 1),
                MemOp::StoreByte(0xC1, 0x7F),
            ]
        );
    }

    #[test]
    fn accepts_0x_prefixes() {
        let text = "# cppc-trace v1\nL 0xa0\nS 0XB0 0x1\nB 0xc1 7f\n";
        let ops = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(
            ops,
            vec![
                MemOp::Load(0xA0),
                MemOp::Store(0xB0, 1),
                MemOp::StoreByte(0xC1, 0x7F),
            ]
        );
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# cppc-trace v1\n\n# comment\nL a0\n";
        let ops = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(ops, vec![MemOp::Load(0xA0)]);
    }

    #[test]
    fn din_import_maps_access_types() {
        let text = "0 1000\n1 0x2008\n2 3000\n0 4000 4\n";
        let ops = read_din_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(
            ops,
            vec![
                MemOp::Load(0x1000),
                MemOp::Store(0x2008, 0),
                MemOp::Load(0x3000),
                MemOp::Load(0x4000),
            ]
        );
    }

    #[test]
    fn din_import_rejects_malformed_lines() {
        for (bad, why) in [
            ("7 1000", "unknown access type"),
            ("0", "missing address"),
            ("0 zz", "not a hex number"),
            ("0 1000 zz", "not a hex number"),
            ("0 1000 4 extra", "trailing garbage"),
        ] {
            let err = read_din_trace(BufReader::new(bad.as_bytes())).unwrap_err();
            match err {
                TraceError::BadLine {
                    line: 1, reason, ..
                } => {
                    assert!(reason.contains(why), "{bad}: got reason '{reason}'");
                }
                other => panic!("{bad}: expected BadLine, got {other}"),
            }
        }
    }

    #[test]
    fn error_display() {
        let e = TraceError::BadLine {
            line: 3,
            content: "oops".into(),
            reason: "trailing garbage after operands",
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("trailing garbage"));
    }
}
