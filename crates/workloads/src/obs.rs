//! Observability for the trace pipeline: how many bytes the streaming
//! binary reader pulled, how many operations it decoded, how often it
//! refilled its chunk buffer, and how much work the format converters
//! did. See `docs/TRACES.md` for the format these counters instrument.

cppc_obs::metrics! {
    group TRACE_METRICS: "trace", "Binary trace pipeline: streaming-reader and converter activity.";
    counter TRACE_BYTES_READ: "trace.bytes_read", "bytes", "Bytes pulled from the underlying stream by binary trace readers (header + records).";
    counter TRACE_OPS_DECODED: "trace.ops_decoded", "ops", "Operations decoded out of binary trace records into OpBatch lanes.";
    counter TRACE_CHUNK_REFILLS: "trace.chunk_refills", "events", "Chunk-buffer refills performed by streaming binary trace readers.";
    counter TRACE_OPS_CONVERTED: "trace.ops_converted", "ops", "Operations pushed through whole-file trace format converters (text/binary/din).";
    timer TRACE_CONVERT: "trace.convert.ns", "ns", "Wall time spent inside whole-file trace format conversions (throughput = ops_converted / this).";
}

/// Registers the `trace.*` metric group (idempotent).
pub fn register_metrics() {
    TRACE_METRICS.register();
}
