//! The deterministic trace generator.

use cppc_cache_sim::hierarchy::MemOp;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

use crate::profile::BenchmarkProfile;

/// Ring capacity for the recently-touched-word pool.
const REUSE_POOL: usize = 192;
/// Ring capacity for the recently-stored-word pool.
const STORE_POOL: usize = 48;

/// Generates an endless, deterministic stream of [`MemOp`]s matching a
/// [`BenchmarkProfile`]. Implements [`Iterator`].
///
/// # Example
///
/// ```
/// use cppc_workloads::{spec2000_profiles, TraceGenerator};
///
/// let profiles = spec2000_profiles();
/// let trace: Vec<_> = TraceGenerator::new(&profiles[0], 42).take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    rng: StdRng,
    recent: Vec<u64>,
    recent_pos: usize,
    recent_stores: Vec<u64>,
    recent_stores_pos: usize,
    cursor: u64,
    store_cursor: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed`.
    #[must_use]
    pub fn new(profile: &BenchmarkProfile, seed: u64) -> Self {
        TraceGenerator {
            profile: *profile,
            rng: StdRng::seed_from_u64(seed),
            recent: Vec::with_capacity(REUSE_POOL),
            recent_pos: 0,
            recent_stores: Vec::with_capacity(STORE_POOL),
            recent_stores_pos: 0,
            cursor: 0,
            store_cursor: 0,
        }
    }

    /// The profile being generated.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn remember(&mut self, addr: u64) {
        if self.recent.len() < REUSE_POOL {
            self.recent.push(addr);
        } else {
            self.recent[self.recent_pos] = addr;
            self.recent_pos = (self.recent_pos + 1) % REUSE_POOL;
        }
    }

    fn remember_store(&mut self, addr: u64) {
        if self.recent_stores.len() < STORE_POOL {
            self.recent_stores.push(addr);
        } else {
            self.recent_stores[self.recent_stores_pos] = addr;
            self.recent_stores_pos = (self.recent_stores_pos + 1) % STORE_POOL;
        }
    }

    fn pick_address(&mut self) -> u64 {
        let p = self.profile;
        let roll: f64 = self.rng.random();
        let addr = if roll < p.seq_prob {
            // Sequential runs stream through the hot region (real loops
            // walk arrays that mostly fit the upper cache levels).
            self.cursor = (self.cursor + 8) % p.hot_set_bytes;
            self.cursor
        } else if roll < p.seq_prob + p.reuse_prob && !self.recent.is_empty() {
            let i = self.rng.random_range(0..self.recent.len());
            self.recent[i]
        } else if self.rng.random_bool(p.hot_prob) {
            self.rng.random_range(0..p.hot_set_bytes) & !7
        } else {
            self.rng.random_range(0..p.working_set_bytes) & !7
        };
        addr & !7
    }

    /// Generates the next operation.
    pub fn step(&mut self) -> MemOp {
        let p = self.profile;
        let is_store = self.rng.random_bool(p.store_fraction());
        let addr = if is_store && self.rng.random_bool(p.store_stream_prob) {
            // Write-once streaming store: advance through the working
            // set; the word is fresh (clean) virtually every time.
            self.store_cursor = (self.store_cursor + 8) % p.working_set_bytes;
            self.store_cursor
        } else if is_store
            && !self.recent_stores.is_empty()
            && self.rng.random_bool(p.store_reuse_prob)
        {
            let i = self.rng.random_range(0..self.recent_stores.len());
            self.recent_stores[i]
        } else {
            let mut a = self.pick_address();
            // Stores write a narrower slice of the hot region than loads
            // read (see `store_region_fraction`).
            if is_store && a < p.hot_set_bytes && p.store_region_fraction < 1.0 {
                let region =
                    ((p.hot_set_bytes as f64 * p.store_region_fraction) as u64).max(64) & !7;
                a %= region;
            }
            a
        };
        self.remember(addr);
        if is_store {
            self.remember_store(addr);
            if self.rng.random_bool(p.byte_store_fraction) {
                // A partial store: pick a byte lane within the word.
                let lane = self.rng.random_range(0..8u64);
                MemOp::StoreByte(addr | lane, self.rng.random())
            } else {
                MemOp::Store(addr, self.rng.random())
            }
        } else {
            MemOp::Load(addr)
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::spec2000_profiles;
    use cppc_cache_sim::geometry::CacheGeometry;
    use cppc_cache_sim::hierarchy::TwoLevelHierarchy;
    use cppc_cache_sim::replacement::ReplacementPolicy;

    fn hierarchy() -> TwoLevelHierarchy {
        // The paper's Table 1 configuration.
        let l1 = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        let l2 = CacheGeometry::new(1024 * 1024, 4, 32).unwrap();
        TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru)
    }

    #[test]
    fn deterministic_across_instances() {
        let p = &spec2000_profiles()[2];
        let a: Vec<_> = TraceGenerator::new(p, 9).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(p, 9).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(p, 10).take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_word_aligned_and_bounded() {
        let p = &spec2000_profiles()[0];
        for op in TraceGenerator::new(p, 1).take(5_000) {
            match op {
                MemOp::StoreByte(a, _) => assert!(a < p.working_set_bytes + 8),
                other => {
                    assert_eq!(other.addr() % 8, 0);
                    assert!(other.addr() < p.working_set_bytes);
                }
            }
        }
    }

    #[test]
    fn byte_stores_present_when_configured() {
        let profiles = spec2000_profiles();
        let gzip = profiles.iter().find(|p| p.name == "gzip").unwrap();
        let n = 20_000;
        let byte_stores = TraceGenerator::new(gzip, 3)
            .take(n)
            .filter(|op| matches!(op, MemOp::StoreByte(..)))
            .count();
        let stores = TraceGenerator::new(gzip, 3)
            .take(n)
            .filter(MemOp::is_store)
            .count();
        let frac = byte_stores as f64 / stores as f64;
        assert!((frac - gzip.byte_store_fraction).abs() < 0.03, "{frac}");
        // swim has none.
        let swim = profiles.iter().find(|p| p.name == "swim").unwrap();
        let none = TraceGenerator::new(swim, 3)
            .take(n)
            .filter(|op| matches!(op, MemOp::StoreByte(..)))
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn store_fraction_near_profile() {
        let p = &spec2000_profiles()[3]; // mcf
        let n = 20_000;
        let stores = TraceGenerator::new(p, 5)
            .take(n)
            .filter(MemOp::is_store)
            .count();
        let measured = stores as f64 / n as f64;
        assert!(
            (measured - p.store_fraction()).abs() < 0.02,
            "measured {measured} vs {}",
            p.store_fraction()
        );
    }

    #[test]
    fn mcf_thrashes_l2() {
        let profiles = spec2000_profiles();
        let mcf = profiles.iter().find(|p| p.name == "mcf").unwrap();
        let mut h = hierarchy();
        h.run(TraceGenerator::new(mcf, 7).take(200_000));
        let miss_rate = h.l2().stats().miss_rate();
        assert!(miss_rate > 0.5, "mcf L2 miss rate {miss_rate}");
    }

    #[test]
    fn cache_friendly_benchmarks_hit_l1() {
        let profiles = spec2000_profiles();
        let l1_miss = |name: &str| {
            let p = profiles.iter().find(|p| p.name == name).unwrap();
            let mut h = hierarchy();
            h.run(TraceGenerator::new(p, 7).take(100_000));
            h.l1().stats().miss_rate()
        };
        for name in ["gzip", "eon", "crafty"] {
            let miss_rate = l1_miss(name);
            assert!(miss_rate < 0.18, "{name} L1 miss rate {miss_rate}");
        }
        // …and the thrasher misses far more often than the friendly ones.
        assert!(l1_miss("mcf") > 2.0 * l1_miss("eon"));
    }

    #[test]
    fn stores_to_dirty_words_occur() {
        // The CPPC read-before-write driver: a healthy fraction of
        // stores must land on already-dirty words.
        let profiles = spec2000_profiles();
        let mut total_ratio = 0.0;
        for p in &profiles {
            let mut h = hierarchy();
            h.run(TraceGenerator::new(p, 11).take(100_000));
            let s = h.l1().stats();
            let ratio = s.stores_to_dirty as f64 / s.stores() as f64;
            assert!(ratio > 0.02, "{}: stores-to-dirty ratio {ratio}", p.name);
            total_ratio += ratio;
        }
        let avg = total_ratio / profiles.len() as f64;
        assert!((0.1..0.6).contains(&avg), "average stores-to-dirty {avg}");
    }

    #[test]
    fn dirty_residency_in_paper_range() {
        // Table 2: average dirty fraction ≈16% (L1) and ≈35% (L2).
        // Accept generous bands: 5–40% and 10–60%.
        let profiles = spec2000_profiles();
        let (mut l1_sum, mut l2_sum) = (0.0, 0.0);
        for p in &profiles {
            let mut h = hierarchy();
            h.set_sample_interval(4096);
            h.run(TraceGenerator::new(p, 13).take(300_000));
            l1_sum += h.l1_dirty_fraction();
            l2_sum += h.l2_dirty_fraction();
        }
        let l1_avg = l1_sum / profiles.len() as f64;
        let l2_avg = l2_sum / profiles.len() as f64;
        assert!((0.05..0.40).contains(&l1_avg), "L1 dirty avg {l1_avg}");
        assert!((0.10..0.60).contains(&l2_avg), "L2 dirty avg {l2_avg}");
    }
}
