//! Microbenchmark access patterns for targeted experiments and benches.

use cppc_cache_sim::hierarchy::MemOp;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

/// A sequential read-then-write sweep over `bytes` of memory with the
/// given word `stride_words` (1 = dense).
///
/// # Panics
///
/// Panics if `bytes` or `stride_words` is zero.
#[must_use]
pub fn sequential_sweep(bytes: u64, stride_words: u64, writes: bool) -> Vec<MemOp> {
    assert!(bytes > 0 && stride_words > 0, "non-zero sweep required");
    let mut ops = Vec::new();
    let mut addr = 0;
    while addr < bytes {
        if writes {
            ops.push(MemOp::Store(addr, addr ^ 0xA5A5_A5A5));
        } else {
            ops.push(MemOp::Load(addr));
        }
        addr += 8 * stride_words;
    }
    ops
}

/// `n` uniformly random operations over `range_bytes`, with the given
/// store fraction. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `range_bytes < 8` or `store_fraction` outside [0, 1].
#[must_use]
pub fn random_mix(n: usize, range_bytes: u64, store_fraction: f64, seed: u64) -> Vec<MemOp> {
    assert!(range_bytes >= 8, "range must hold at least one word");
    assert!((0.0..=1.0).contains(&store_fraction), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let addr = rng.random_range(0..range_bytes) & !7;
            if rng.random_bool(store_fraction) {
                MemOp::Store(addr, rng.random())
            } else {
                MemOp::Load(addr)
            }
        })
        .collect()
}

/// A pointer-chase: a random permutation cycle over `words` words inside
/// `words * 8` bytes, visited `rounds` times — maximal temporal reuse
/// with no spatial locality.
///
/// # Panics
///
/// Panics if `words` is zero.
#[must_use]
pub fn pointer_chase(words: u64, rounds: usize, seed: u64) -> Vec<MemOp> {
    assert!(words > 0, "need at least one word");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..words).map(|w| w * 8).collect();
    // Fisher-Yates.
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut ops = Vec::with_capacity(order.len() * rounds);
    for _ in 0..rounds {
        for &addr in &order {
            ops.push(MemOp::Load(addr));
        }
    }
    ops
}

/// A write-heavy working loop: repeatedly stores over a small buffer —
/// the worst case for CPPC's read-before-write (every store after the
/// first round hits a dirty word).
///
/// # Panics
///
/// Panics if `words` is zero.
#[must_use]
pub fn store_churn(words: u64, rounds: usize, seed: u64) -> Vec<MemOp> {
    assert!(words > 0, "need at least one word");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(words as usize * rounds);
    for _ in 0..rounds {
        for w in 0..words {
            ops.push(MemOp::Store(w * 8, rng.random()));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_range() {
        let ops = sequential_sweep(256, 1, false);
        assert_eq!(ops.len(), 32);
        assert_eq!(ops[0].addr(), 0);
        assert_eq!(ops[31].addr(), 248);
    }

    #[test]
    fn sweep_strided() {
        let ops = sequential_sweep(256, 4, true);
        assert_eq!(ops.len(), 8);
        assert!(ops.iter().all(MemOp::is_store));
        assert_eq!(ops[1].addr(), 32);
    }

    #[test]
    fn random_mix_fraction() {
        let ops = random_mix(10_000, 1 << 20, 0.3, 1);
        let stores = ops.iter().filter(|o| o.is_store()).count();
        assert!((stores as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn pointer_chase_is_permutation() {
        let ops = pointer_chase(64, 1, 2);
        let mut addrs: Vec<u64> = ops.iter().map(MemOp::addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 64);
    }

    #[test]
    fn pointer_chase_rounds_repeat() {
        let one = pointer_chase(16, 1, 3);
        let two = pointer_chase(16, 2, 3);
        assert_eq!(two.len(), 32);
        assert_eq!(&two[..16], &one[..]);
        assert_eq!(&two[16..], &one[..]);
    }

    #[test]
    fn store_churn_is_all_stores() {
        let ops = store_churn(8, 4, 0);
        assert_eq!(ops.len(), 32);
        assert!(ops.iter().all(MemOp::is_store));
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_mix(100, 4096, 0.5, 7), random_mix(100, 4096, 0.5, 7));
        assert_eq!(pointer_chase(32, 1, 7), pointer_chase(32, 1, 7));
    }
}
