//! Synthetic SPEC2000-like memory trace generators.
//!
//! The paper evaluates on 100M-instruction Simpoints of SPEC2000. Those
//! traces are not redistributable and SimpleScalar is not reproducible
//! here, so this crate generates *synthetic* traces whose aggregate
//! statistics span the same ranges the paper's evaluation depends on:
//!
//! * load/store mix (loads ≈ 2x stores, varying per benchmark),
//! * temporal locality (reuse of recently-touched words) and spatial
//!   locality (sequential runs),
//! * store locality (stores revisiting recently-stored words — the
//!   source of CPPC's read-before-writes),
//! * working-set size (from cache-resident up to mcf's thrashing
//!   footprint with its ~80% L2 miss rate, §6.2),
//! * dirty-data residency averaging ≈16% in L1 / ≈35% in L2 (Table 2).
//!
//! Every generator is deterministic given its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod generator;
pub mod micro;
pub mod obs;
pub mod profile;
pub mod shared;
pub mod trace_io;

pub use binfmt::{read_bin_trace, write_bin_trace, BinTraceError, BinTraceReader, BinTraceWriter};
pub use cppc_cache_sim::batch::OpBatch;
pub use generator::TraceGenerator;
pub use profile::{spec2000_profiles, BenchmarkProfile};
pub use shared::{Replay, SharedTrace};
pub use trace_io::{read_din_trace, read_trace, write_trace};
