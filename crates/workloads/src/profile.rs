//! Per-benchmark trace profiles.

/// Statistical profile of one benchmark's memory behaviour.
///
/// The fields are the knobs of [`crate::TraceGenerator`]; the SPEC2000
/// profiles below were tuned so the resulting hierarchy statistics span
/// the ranges the paper's evaluation reports (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC2000 component).
    pub name: &'static str,
    /// Loads per 1000 instructions.
    pub loads_per_kinst: u32,
    /// Stores per 1000 instructions.
    pub stores_per_kinst: u32,
    /// Total memory footprint touched by the trace, in bytes.
    pub working_set_bytes: u64,
    /// Hot-region size (the L1-friendly fraction of the footprint).
    pub hot_set_bytes: u64,
    /// Probability an access reuses a recently touched word.
    pub reuse_prob: f64,
    /// Probability an access continues a sequential run.
    pub seq_prob: f64,
    /// Probability an access (when neither reusing nor sequential)
    /// falls in the hot region.
    pub hot_prob: f64,
    /// Probability a store re-writes a recently *stored* word — the
    /// direct source of stores-to-dirty-words (CPPC read-before-writes).
    pub store_reuse_prob: f64,
    /// Stores that land in the hot region are folded into its lowest
    /// `store_region_fraction` — programs write a narrower region than
    /// they read (stack frames, output buffers). Controls both the
    /// dirty-residency (Table 2) and the store-to-dirty rate.
    pub store_region_fraction: f64,
    /// Probability a store is a *streaming* (write-once) store that
    /// advances through the working set — stack pushes, output buffers.
    /// Streaming stores rarely rewrite dirty words and populate the L2
    /// with dirty blocks via write-backs.
    pub store_stream_prob: f64,
    /// Baseline CPI contributed by non-memory instructions (ILP model).
    pub base_cpi: f64,
    /// Fraction of stores that are sub-word (byte) stores — string and
    /// I/O-heavy codes sit near the top of the range. Partial stores
    /// force read-modify-writes on block-ECC schemes (paper §1).
    pub byte_store_fraction: f64,
}

impl BenchmarkProfile {
    /// Memory operations per 1000 instructions.
    #[must_use]
    pub fn memops_per_kinst(&self) -> u32 {
        self.loads_per_kinst + self.stores_per_kinst
    }

    /// Instructions represented by one memory operation of the trace.
    #[must_use]
    pub fn instructions_per_memop(&self) -> f64 {
        1000.0 / f64::from(self.memops_per_kinst())
    }

    /// Fraction of memory operations that are stores.
    #[must_use]
    pub fn store_fraction(&self) -> f64 {
        f64::from(self.stores_per_kinst) / f64::from(self.memops_per_kinst())
    }
}

/// The 15 SPEC2000 profiles used throughout the evaluation (the paper
/// runs "Spec2000 benchmarks" without listing them; these are the 15
/// components most commonly simulated with 100M Simpoints).
///
/// Tuning notes: `mcf` gets a far-over-L2 footprint and minimal locality
/// (its L2 miss rate in the paper is ~80%); `swim`/`art`/`equake` are
/// streaming floats with large footprints; `gzip`/`bzip2`/`crafty` are
/// cache-friendly integer codes with strong store locality.
#[must_use]
pub fn spec2000_profiles() -> Vec<BenchmarkProfile> {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;
    vec![
        BenchmarkProfile {
            name: "gzip",
            loads_per_kinst: 230,
            stores_per_kinst: 120,
            working_set_bytes: 256 * KB,
            hot_set_bytes: 24 * KB,
            reuse_prob: 0.45,
            seq_prob: 0.25,
            hot_prob: 0.95,
            store_reuse_prob: 0.32,
            store_region_fraction: 0.08,
            store_stream_prob: 0.50,
            base_cpi: 0.45,
            byte_store_fraction: 0.18,
        },
        BenchmarkProfile {
            name: "vpr",
            loads_per_kinst: 280,
            stores_per_kinst: 110,
            working_set_bytes: 768 * KB,
            hot_set_bytes: 48 * KB,
            reuse_prob: 0.42,
            seq_prob: 0.12,
            hot_prob: 0.94,
            store_reuse_prob: 0.18,
            store_region_fraction: 0.10,
            store_stream_prob: 0.45,
            base_cpi: 0.55,
            byte_store_fraction: 0.06,
        },
        BenchmarkProfile {
            name: "gcc",
            loads_per_kinst: 260,
            stores_per_kinst: 160,
            working_set_bytes: MB,
            hot_set_bytes: 64 * KB,
            reuse_prob: 0.40,
            seq_prob: 0.20,
            hot_prob: 0.93,
            store_reuse_prob: 0.22,
            store_region_fraction: 0.10,
            store_stream_prob: 0.45,
            base_cpi: 0.60,
            byte_store_fraction: 0.12,
        },
        BenchmarkProfile {
            name: "mcf",
            loads_per_kinst: 350,
            stores_per_kinst: 90,
            working_set_bytes: 64 * MB,
            hot_set_bytes: 256 * KB,
            reuse_prob: 0.25,
            seq_prob: 0.05,
            hot_prob: 0.40,
            store_reuse_prob: 0.15,
            store_region_fraction: 1.00,
            store_stream_prob: 0.30,
            base_cpi: 0.80,
            byte_store_fraction: 0.04,
        },
        BenchmarkProfile {
            name: "crafty",
            loads_per_kinst: 300,
            stores_per_kinst: 100,
            working_set_bytes: 512 * KB,
            hot_set_bytes: 26 * KB,
            reuse_prob: 0.50,
            seq_prob: 0.10,
            hot_prob: 0.95,
            store_reuse_prob: 0.28,
            store_region_fraction: 0.08,
            store_stream_prob: 0.50,
            base_cpi: 0.50,
            byte_store_fraction: 0.08,
        },
        BenchmarkProfile {
            name: "parser",
            loads_per_kinst: 250,
            stores_per_kinst: 130,
            working_set_bytes: 1536 * KB,
            hot_set_bytes: 48 * KB,
            reuse_prob: 0.40,
            seq_prob: 0.12,
            hot_prob: 0.92,
            store_reuse_prob: 0.22,
            store_region_fraction: 0.10,
            store_stream_prob: 0.45,
            base_cpi: 0.60,
            byte_store_fraction: 0.15,
        },
        BenchmarkProfile {
            name: "eon",
            loads_per_kinst: 310,
            stores_per_kinst: 170,
            working_set_bytes: 256 * KB,
            hot_set_bytes: 24 * KB,
            reuse_prob: 0.55,
            seq_prob: 0.12,
            hot_prob: 0.96,
            store_reuse_prob: 0.18,
            store_region_fraction: 0.08,
            store_stream_prob: 0.50,
            base_cpi: 0.45,
            byte_store_fraction: 0.07,
        },
        BenchmarkProfile {
            name: "perlbmk",
            loads_per_kinst: 290,
            stores_per_kinst: 160,
            working_set_bytes: 512 * KB,
            hot_set_bytes: 28 * KB,
            reuse_prob: 0.45,
            seq_prob: 0.18,
            hot_prob: 0.94,
            store_reuse_prob: 0.28,
            store_region_fraction: 0.08,
            store_stream_prob: 0.45,
            base_cpi: 0.50,
            byte_store_fraction: 0.16,
        },
        BenchmarkProfile {
            name: "gap",
            loads_per_kinst: 240,
            stores_per_kinst: 140,
            working_set_bytes: 2 * MB,
            hot_set_bytes: 96 * KB,
            reuse_prob: 0.35,
            seq_prob: 0.28,
            hot_prob: 0.90,
            store_reuse_prob: 0.18,
            store_region_fraction: 0.12,
            store_stream_prob: 0.45,
            base_cpi: 0.65,
            byte_store_fraction: 0.08,
        },
        BenchmarkProfile {
            name: "vortex",
            loads_per_kinst: 270,
            stores_per_kinst: 180,
            working_set_bytes: MB,
            hot_set_bytes: 56 * KB,
            reuse_prob: 0.40,
            seq_prob: 0.18,
            hot_prob: 0.92,
            store_reuse_prob: 0.18,
            store_region_fraction: 0.10,
            store_stream_prob: 0.45,
            base_cpi: 0.55,
            byte_store_fraction: 0.12,
        },
        BenchmarkProfile {
            name: "bzip2",
            loads_per_kinst: 250,
            stores_per_kinst: 110,
            working_set_bytes: 512 * KB,
            hot_set_bytes: 28 * KB,
            reuse_prob: 0.45,
            seq_prob: 0.30,
            hot_prob: 0.94,
            store_reuse_prob: 0.32,
            store_region_fraction: 0.08,
            store_stream_prob: 0.50,
            base_cpi: 0.50,
            byte_store_fraction: 0.18,
        },
        BenchmarkProfile {
            name: "twolf",
            loads_per_kinst: 300,
            stores_per_kinst: 90,
            working_set_bytes: 768 * KB,
            hot_set_bytes: 40 * KB,
            reuse_prob: 0.42,
            seq_prob: 0.08,
            hot_prob: 0.93,
            store_reuse_prob: 0.22,
            store_region_fraction: 0.10,
            store_stream_prob: 0.45,
            base_cpi: 0.60,
            byte_store_fraction: 0.06,
        },
        BenchmarkProfile {
            name: "swim",
            loads_per_kinst: 320,
            stores_per_kinst: 150,
            working_set_bytes: 32 * MB,
            hot_set_bytes: 512 * KB,
            reuse_prob: 0.25,
            seq_prob: 0.55,
            hot_prob: 0.85,
            store_reuse_prob: 0.10,
            store_region_fraction: 1.00,
            store_stream_prob: 0.60,
            base_cpi: 0.70,
            byte_store_fraction: 0.00,
        },
        BenchmarkProfile {
            name: "art",
            loads_per_kinst: 340,
            stores_per_kinst: 80,
            working_set_bytes: 16 * MB,
            hot_set_bytes: 256 * KB,
            reuse_prob: 0.20,
            seq_prob: 0.55,
            hot_prob: 0.85,
            store_reuse_prob: 0.15,
            store_region_fraction: 1.00,
            store_stream_prob: 0.60,
            base_cpi: 0.75,
            byte_store_fraction: 0.00,
        },
        BenchmarkProfile {
            name: "equake",
            loads_per_kinst: 310,
            stores_per_kinst: 120,
            working_set_bytes: 24 * MB,
            hot_set_bytes: 320 * KB,
            reuse_prob: 0.22,
            seq_prob: 0.50,
            hot_prob: 0.85,
            store_reuse_prob: 0.20,
            store_region_fraction: 1.00,
            store_stream_prob: 0.60,
            base_cpi: 0.70,
            byte_store_fraction: 0.02,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_profiles() {
        assert_eq!(spec2000_profiles().len(), 15);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = spec2000_profiles().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn mcf_is_the_thrasher() {
        let profiles = spec2000_profiles();
        let mcf = profiles.iter().find(|p| p.name == "mcf").unwrap();
        for p in &profiles {
            if p.name != "mcf" {
                assert!(mcf.working_set_bytes >= p.working_set_bytes);
                assert!(mcf.hot_prob <= p.hot_prob, "{}", p.name);
            }
        }
    }

    #[test]
    fn loads_dominate_stores() {
        for p in spec2000_profiles() {
            assert!(p.loads_per_kinst > p.stores_per_kinst, "{}", p.name);
            assert!(
                p.store_fraction() > 0.15 && p.store_fraction() < 0.45,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn probabilities_are_sane() {
        for p in spec2000_profiles() {
            for v in [p.reuse_prob, p.seq_prob, p.hot_prob, p.store_reuse_prob] {
                assert!((0.0..=1.0).contains(&v), "{}", p.name);
            }
            assert!(p.reuse_prob + p.seq_prob < 1.0, "{}", p.name);
            assert!((0.0..=0.5).contains(&p.byte_store_fraction), "{}", p.name);
            assert!(p.hot_set_bytes < p.working_set_bytes, "{}", p.name);
        }
    }

    #[test]
    fn derived_quantities() {
        let p = &spec2000_profiles()[0];
        assert_eq!(p.memops_per_kinst(), 350);
        assert!((p.instructions_per_memop() - 1000.0 / 350.0).abs() < 1e-12);
    }
}
